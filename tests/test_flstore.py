"""End-to-end behaviour of the FLStore facade."""

from __future__ import annotations

import pytest

from repro.core.flstore import FLStore, build_default_flstore
from repro.serverless.faults import ZipfianFaultInjector
from repro.workloads.base import WorkloadRequest


class TestIngestion:
    def test_ingest_populates_catalog_and_cache(self, flstore, rounds):
        assert len(flstore.catalog) == len(rounds)
        assert flstore.cached_bytes > 0
        assert flstore.warm_function_count >= 1
        assert flstore.ingest_cost.total_dollars > 0

    def test_persistent_store_holds_every_round(self, flstore, rounds):
        for record in rounds:
            for key in record.all_keys():
                assert flstore.persistent_store.contains(key)

    def test_tailored_policy_keeps_bounded_working_set(self, small_config, rounds):
        system = build_default_flstore(small_config)
        for record in rounds:
            system.ingest_round(record)
        # Only the last couple of rounds of updates (plus metadata window and
        # the latest aggregate) should be resident, not all ten rounds.
        spec_bytes = rounds[0].update_bytes
        assert system.cached_bytes < 4 * spec_bytes


class TestServing:
    def test_serve_returns_result_latency_and_cost(self, flstore):
        request = flstore.make_request("malicious_filtering", round_id=9)
        result = flstore.serve(request)
        assert result.workload == "malicious_filtering"
        assert result.latency.total_seconds > 0
        assert result.cost.total_dollars > 0
        assert result.cache_hits + result.cache_misses > 0
        assert result.served_by

    def test_warm_request_hits_cache(self, flstore):
        latest = flstore.catalog.latest_round
        result = flstore.serve(flstore.make_request("malicious_filtering", round_id=latest))
        assert result.cache_misses == 0
        assert result.hit_rate == 1.0
        # Co-located execution: communication latency is negligible compared
        # to the baseline's tens of seconds.
        assert result.latency.communication_seconds < 1.0

    def test_cold_request_fetches_from_persistent_store(self, flstore):
        result = flstore.serve(flstore.make_request("malicious_filtering", round_id=0))
        assert result.cache_misses > 0
        assert result.latency.communication_seconds > 1.0

    def test_prefetch_makes_next_round_a_hit(self, flstore):
        cold = flstore.serve(flstore.make_request("clustering", round_id=0))
        assert cold.cache_misses > 0
        warm = flstore.serve(flstore.make_request("clustering", round_id=1))
        assert warm.cache_misses == 0

    def test_request_tracker_records_completion(self, flstore):
        request = flstore.make_request("inference", round_id=flstore.catalog.latest_round)
        flstore.serve(request)
        assert flstore.tracker.is_completed(request.request_id)

    def test_duplicate_request_id_rejected(self, flstore):
        request = WorkloadRequest(request_id="dup", workload="inference", round_id=9)
        flstore.serve(request)
        with pytest.raises(ValueError):
            flstore.serve(request)

    def test_results_are_persisted(self, flstore):
        request = flstore.make_request("inference", round_id=9)
        flstore.serve(request)
        assert flstore.persistent_store.contains(("result", request.request_id))

    def test_every_registered_workload_can_be_served(self, flstore):
        from repro.workloads.registry import list_workloads

        latest = flstore.catalog.latest_round
        client = flstore.catalog.participants(latest)[0]
        for name in list_workloads():
            result = flstore.serve(flstore.make_request(name, round_id=latest, client_id=client))
            assert isinstance(result.result, dict)

    def test_clock_advances_with_serving(self, flstore):
        before = flstore.clock.now()
        flstore.serve(flstore.make_request("clustering", round_id=9))
        assert flstore.clock.now() > before


class TestSpawnLatencyAccounting:
    def test_empty_fleet_spawn_latency_is_charged(self, small_config):
        """Serving with no warm functions spawns one and charges its cold start."""
        system = build_default_flstore(small_config)
        # No ingestion: the fleet is empty and nothing is cached, so the
        # execution function must be spawned on demand.
        assert system.warm_function_count == 0
        system.catalog.register_membership(0, [1, 2])
        result = system.serve(system.make_request("clustering", round_id=0))
        assert system.warm_function_count == 1
        assert result.latency.cold_start_seconds >= small_config.serverless.cold_start_seconds

    def test_any_warm_function_returns_zero_latency_when_warm(self, flstore):
        function_id, latency = flstore._any_warm_function()
        assert flstore.platform.get_function(function_id).is_warm
        assert latency.total_seconds == 0.0

    def test_any_warm_function_spawns_and_reports_latency(self, small_config):
        system = build_default_flstore(small_config)
        function_id, latency = system._any_warm_function()
        assert system.platform.get_function(function_id).is_warm
        assert latency.cold_start_seconds == small_config.serverless.cold_start_seconds


class TestCostModel:
    def test_flstore_request_is_orders_cheaper_than_aggregator_hour(self, flstore):
        result = flstore.serve(flstore.make_request("cosine_similarity", round_id=9))
        assert result.cost.total_dollars < 0.01

    def test_standby_cost_is_tiny(self, flstore):
        standby = flstore.standby_cost(50.0)
        assert standby.total_dollars < 0.1

    def test_component_overhead_reports_both_components(self, flstore):
        overhead = flstore.component_overhead()
        assert overhead["cache_engine_bytes"] > 0
        assert overhead["request_tracker_bytes"] >= 0


class TestFaultTolerance:
    def _build(self, small_config, rounds, replication, fault_rate):
        injector = ZipfianFaultInjector(fault_rate=fault_rate, seed=5)
        system = build_default_flstore(
            small_config, replication_factor=replication, fault_injector=injector
        )
        for record in rounds:
            system.ingest_round(record)
        return system

    def test_faults_do_not_break_serving(self, small_config, rounds):
        system = self._build(small_config, rounds, replication=0, fault_rate=0.5)
        for i in range(6, 10):
            result = system.serve(system.make_request("malicious_filtering", round_id=i))
            assert isinstance(result.result, dict)

    def test_replication_reduces_miss_penalty_under_faults(self, small_config, rounds):
        unreplicated = self._build(small_config, rounds, replication=0, fault_rate=0.6)
        replicated = self._build(small_config, rounds, replication=2, fault_rate=0.6)
        def total_misses(system):
            misses = 0
            for i in range(4, 10):
                misses += system.serve(system.make_request("clustering", round_id=i)).cache_misses
            return misses

        assert total_misses(replicated) <= total_misses(unreplicated)

    def test_policy_mode_variants_build_and_serve(self, small_config, rounds):
        for mode in ("lru", "fifo", "static", "random-policy", "limited"):
            system = build_default_flstore(small_config, policy_mode=mode)
            for record in rounds[:3]:
                system.ingest_round(record)
            result = system.serve(system.make_request("malicious_filtering", round_id=2))
            assert isinstance(result.result, dict)


class TestBuilder:
    def test_builder_rejects_unknown_policy(self, small_config):
        with pytest.raises(ValueError):
            build_default_flstore(small_config, policy_mode="quantum")

    def test_shared_persistent_store(self, small_config, rounds):
        first = build_default_flstore(small_config)
        for record in rounds[:2]:
            first.ingest_round(record)
        second = build_default_flstore(small_config, persistent_store=first.persistent_store)
        assert second.persistent_store is first.persistent_store

    def test_default_build_is_flstore_instance(self, small_config):
        assert isinstance(build_default_flstore(small_config), FLStore)
