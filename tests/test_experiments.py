"""The figure/table experiments run end to end (at reduced scale) and keep the paper's shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import experiments as E
from repro.analysis import experiments_appendix as A

# Small scales keep the whole module under a few seconds while still being
# large enough for the qualitative shapes to emerge.
FAST = dict(num_rounds=8, requests_per_workload=5)
WORKLOADS_SMALL = ("malicious_filtering", "cosine_similarity", "incentives")


class TestMotivationFigures:
    def test_figure1_non_training_share_is_significant(self):
        rows = E.run_figure1_latency_share(
            workloads=WORKLOADS_SMALL, num_rounds=8, requests_per_workload=4
        )
        assert len(rows) == len(WORKLOADS_SMALL)
        assert all(0.0 <= r["non_training_share_pct"] <= 100.0 for r in rows)
        # The heavier workloads should account for a large share of round latency.
        assert max(r["non_training_share_pct"] for r in rows) > 30.0

    def test_figure2_cost_share_dominated_by_non_training(self):
        rows = E.run_figure2_cost_share(
            workloads=WORKLOADS_SMALL, num_rounds=8, requests_per_workload=4
        )
        # With 10 participants per round (vs the paper's 200-client rounds)
        # the non-training share is smaller in absolute terms, but it must
        # still be a substantial fraction of the per-round cost.
        assert max(r["non_training_share_pct"] for r in rows) > 40.0
        assert all(r["non_training_cost"] > 0 for r in rows)

    def test_figure4_communication_dominates_computation(self):
        result = E.run_figure4_comm_vs_comp(
            models=("resnet18", "efficientnet_v2_small"),
            workloads=("cosine_similarity", "malicious_filtering"),
            num_rounds=8,
            requests_per_workload=4,
        )
        assert result["average_communication_seconds"] > result["average_computation_seconds"]
        assert result["communication_to_computation_ratio"] > 5.0


class TestHeadlineComparisons:
    def test_figure7_flstore_latency_beats_objstore(self):
        rows = E.run_figure7_latency_vs_objstore(
            models=("efficientnet_v2_small",), workloads=WORKLOADS_SMALL, **FAST
        )
        assert len(rows) == len(WORKLOADS_SMALL)
        mean_reduction = np.mean([r["latency_reduction_pct"] for r in rows])
        assert mean_reduction > 40.0
        assert all(r["flstore_latency_seconds"] < r["objstore_agg_latency_seconds"] for r in rows)

    def test_figure8_flstore_cost_beats_objstore(self):
        rows = E.run_figure8_cost_vs_objstore(
            models=("efficientnet_v2_small",), workloads=WORKLOADS_SMALL, **FAST
        )
        mean_reduction = np.mean([r["cost_reduction_pct"] for r in rows])
        assert mean_reduction > 70.0

    def test_figure9_flstore_beats_cache_agg_on_cost(self):
        rows = E.run_figure9_vs_cache_agg(workloads=WORKLOADS_SMALL, **FAST)
        assert all(r["cost_reduction_pct"] > 90.0 for r in rows)
        heavy = [r for r in rows if r["workload"] == "Malicious Filtering"]
        assert heavy and heavy[0]["latency_reduction_pct"] > 0.0

    def test_figure10_overall_cost_drops_with_flstore(self):
        rows = E.run_figure10_overall_cost(
            workloads=WORKLOADS_SMALL, num_rounds=8, requests_per_workload=4
        )
        assert all(r["cost_with_flstore"] <= r["cost_without_flstore"] for r in rows)
        assert max(r["reduction_pct"] for r in rows) > 20.0


class TestPolicyStudies:
    def test_figure11_tailored_policy_beats_traditional(self):
        rows = E.run_figure11_policy_comparison(
            workloads=("malicious_filtering", "clustering"),
            policy_modes={"FLStore": "tailored", "FLStore-FIFO": "fifo"},
            num_rounds=8,
            requests_per_workload=5,
        )
        by_variant = {}
        for row in rows:
            by_variant.setdefault(row["variant"], []).append(row["mean_latency_seconds"])
        assert np.mean(by_variant["FLStore"]) < np.mean(by_variant["FLStore-FIFO"])

    def test_table2_hit_rates_contrast(self):
        rows = E.run_table2_hit_rates(num_rounds=10)
        flstore_rows = [r for r in rows if r["policy"].startswith("FLStore")]
        traditional_rows = [r for r in rows if not r["policy"].startswith("FLStore")]
        assert all(r["hit_rate"] >= 0.8 for r in flstore_rows)
        assert all(r["hit_rate"] <= 0.05 for r in traditional_rows)
        assert {r["group"] for r in rows} == {"P2", "P3", "P4"}

    def test_figure18_dynamic_policy_beats_static(self):
        result = E.run_figure18_static_ablation(num_rounds=8, warmup_requests=3, measured_requests=5)
        assert result["latency_reduction_pct"] > 0.0
        assert result["cost_ratio"] > 1.0


class TestTotalsBreakups:
    def test_figure15_baseline_is_communication_bound(self):
        rows = E.run_figure15_total_time_breakup(
            models=("efficientnet_v2_small",), workloads=WORKLOADS_SMALL, **FAST
        )
        heavy = [r for r in rows if r["workload"] != "Incentives"]
        assert all(r["objstore_comm_fraction"] > 0.8 for r in heavy)
        assert all(r["flstore_total_hours"] < r["objstore_communication_hours"] for r in heavy)

    def test_figure16_total_cost_reduction(self):
        rows = E.run_figure16_total_cost_breakup(
            models=("efficientnet_v2_small",), workloads=WORKLOADS_SMALL, **FAST
        )
        assert all(r["cost_reduction_pct"] > 50.0 for r in rows)

    def test_figure17_totals_vs_cache_agg(self):
        rows = E.run_figure17_vs_cache_agg_totals(workloads=WORKLOADS_SMALL, **FAST)
        assert all(r["cost_reduction_pct"] > 90.0 for r in rows)
        # Model-update-heavy workloads must also win on accumulated time;
        # metadata-only workloads (Incentives) are allowed to be comparable.
        heavy = [r for r in rows if r["workload"] != "Incentives"]
        assert all(r["flstore_total_hours"] < r["cache_agg_total_hours"] for r in heavy)


class TestAppendixExperiments:
    def test_figure12_latency_flat_then_rising(self):
        rows = A.run_figure12_scalability(
            workloads=("cosine_similarity",), parallel_requests=(1, 3, 5, 8, 10), num_rounds=6
        )
        by_parallel = {r["parallel_requests"]: r["mean_latency_seconds"] for r in rows}
        assert by_parallel[1] == pytest.approx(by_parallel[5])
        assert by_parallel[10] > by_parallel[5]

    def test_figure13_more_instances_reduce_latency(self):
        rows = A.run_figure13_fault_tolerance(
            workloads=("clustering", "cosine_similarity"),
            function_instances=(1, 3),
            requests_per_workload=6,
            num_rounds=8,
            fault_rate=0.4,
        )
        single = np.mean([r["mean_latency_seconds"] for r in rows if r["function_instances"] == 1])
        triple = np.mean([r["mean_latency_seconds"] for r in rows if r["function_instances"] == 3])
        assert triple <= single

    def test_figure14_replication_cheaper_than_refetching(self):
        result = A.run_figure14_replication_vs_refetch(
            workloads=("clustering", "cosine_similarity"),
            requests_per_workload=6,
            num_rounds=8,
            fault_rate=0.4,
        )
        assert result["replication_total_cost_dollars"] <= result["refetch_total_cost_dollars"]
        assert result["replication_keepalive_cost_dollars"] < 0.01

    def test_figure19_model_zoo_summary(self):
        result = A.run_figure19_model_footprints()
        assert result["num_models"] == 23
        assert 120 <= result["average_size_mb"] <= 200
        assert all(r["fits_in_10gb_function"] for r in result["rows"])

    def test_section55_overhead_small_and_fast(self):
        rows = A.run_section55_component_overhead(request_counts=(1000,))
        assert rows[0]["request_tracker_mb"] < 5.0
        assert rows[0]["cache_engine_mb"] < 5.0
        assert rows[0]["lookup_under_one_ms"]

    def test_section22_capacity_analysis(self):
        result = A.run_section22_capacity_analysis()
        assert result["full_caching"]["total_tb"] > 50
        assert result["tailored_policies"]["total_gb"] < 5
        assert result["footprint_reduction_pct"] > 99.0

    def test_prefetch_ablation_depth_zero_has_no_hits(self):
        rows = A.run_ablation_prefetch_depth(prefetch_depths=(0, 1), num_rounds=8, num_requests=6)
        by_depth = {r["prefetch_rounds_ahead"]: r for r in rows}
        assert by_depth[0]["hit_rate"] < by_depth[1]["hit_rate"]
        assert by_depth[1]["mean_latency_seconds"] < by_depth[0]["mean_latency_seconds"]


class TestDeterminismAndParallelism:
    def test_repeated_runs_are_byte_identical(self):
        """The setup/summary caches must not change any row (same seeds ⇒ same rows)."""
        first = E.run_figure7_latency_vs_objstore(num_rounds=5, requests_per_workload=3)
        second = E.run_figure7_latency_vs_objstore(num_rounds=5, requests_per_workload=3)
        assert first == second

    def test_parallel_rows_match_serial_rows(self):
        serial = E.run_figure11_policy_comparison(num_rounds=5, requests_per_workload=3)
        parallel = E.run_figure11_policy_comparison(num_rounds=5, requests_per_workload=3, workers=2)
        assert serial == parallel

    def test_parallel_table2_matches_serial(self):
        serial = E.run_table2_hit_rates(num_rounds=6)
        parallel = E.run_table2_hit_rates(num_rounds=6, workers=2)
        assert serial == parallel
