"""Multi-tenant FLStore and the framework-integration adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.flstore import build_default_flstore
from repro.core.multitenant import MultiTenantFLStore
from repro.integrations.adapter import FrameworkAdapter, RoundEvent


class TestMultiTenantFLStore:
    @pytest.fixture()
    def manager(self, small_config):
        return MultiTenantFLStore(small_config)

    def test_register_and_list_tenants(self, manager):
        manager.register_tenant("team-a")
        manager.register_tenant("team-b", policy_mode="lru")
        assert manager.tenants() == ["team-a", "team-b"]
        assert len(manager) == 2
        assert manager.tenant("team-b").policy_mode == "lru"

    def test_duplicate_registration_rejected(self, manager):
        manager.register_tenant("team-a")
        with pytest.raises(ValueError):
            manager.register_tenant("team-a")

    def test_unknown_tenant_raises(self, manager):
        with pytest.raises(KeyError):
            manager.tenant("ghost")

    def test_tenant_isolation(self, manager, rounds):
        manager.register_tenant("team-a")
        manager.register_tenant("team-b")
        for record in rounds[:3]:
            manager.ingest_round("team-a", record)
        assert manager.tenant("team-a").flstore.cached_bytes > 0
        assert manager.tenant("team-b").flstore.cached_bytes == 0
        assert manager.tenant("team-a").rounds_ingested == 3
        assert manager.tenant("team-b").rounds_ingested == 0

    def test_serve_routes_to_the_right_tenant(self, manager, rounds):
        manager.register_tenant("team-a")
        for record in rounds[:3]:
            manager.ingest_round("team-a", record)
        flstore = manager.tenant("team-a").flstore
        result = manager.serve("team-a", flstore.make_request("malicious_filtering", round_id=2))
        assert result.cache_hits > 0
        assert manager.tenant("team-a").requests_served == 1

    def test_usage_report_and_costs(self, manager, rounds):
        manager.register_tenant("team-a")
        manager.ingest_round("team-a", rounds[0])
        report = manager.usage_report()
        assert report[0]["tenant"] == "team-a"
        assert report[0]["cached_mb"] > 0
        assert manager.total_cached_bytes() > 0
        assert manager.standby_cost(50.0).total_dollars < 0.1

    def test_remove_tenant(self, manager):
        manager.register_tenant("team-a")
        assert manager.remove_tenant("team-a") is True
        assert manager.remove_tenant("team-a") is False
        assert manager.tenants() == []


class TestFrameworkAdapter:
    @pytest.fixture()
    def adapter(self, small_config):
        flstore = build_default_flstore(small_config)
        return FrameworkAdapter(flstore)

    def _event(self, round_id, n_clients=4, dim=16, with_metrics=True):
        rng = np.random.default_rng(round_id)
        weights = {cid: rng.normal(size=dim) for cid in range(n_clients)}
        metrics = (
            {cid: {"local_accuracy": 0.5 + 0.05 * cid, "num_samples": 100 + cid} for cid in range(n_clients)}
            if with_metrics
            else {}
        )
        return RoundEvent(round_id=round_id, client_weights=weights, client_metrics=metrics)

    def test_round_event_is_ingested(self, adapter):
        record = adapter.on_round_complete(self._event(0))
        assert record.num_participants == 4
        assert adapter.flstore.catalog.has_round(0)
        assert adapter.rounds_relayed == 1
        # Updates carry the model's logical size even though the host
        # framework only handed over reduced vectors.
        assert record.updates[0].size_bytes == adapter.model_spec.size_bytes

    def test_fedavg_applied_when_no_aggregate_given(self, adapter):
        record = adapter.on_round_complete(self._event(0))
        stacked = np.stack([u.weights for u in record.updates.values()])
        assert np.all(record.aggregate.weights <= stacked.max(axis=0) + 1e-9)
        assert np.all(record.aggregate.weights >= stacked.min(axis=0) - 1e-9)

    def test_explicit_aggregate_is_respected(self, adapter):
        event = self._event(0)
        event.aggregate_weights = np.zeros(16)
        record = adapter.on_round_complete(event)
        assert np.allclose(record.aggregate.weights, 0.0)

    def test_metadata_defaults_when_metrics_missing(self, adapter):
        record = adapter.on_round_complete(self._event(0, with_metrics=False))
        assert all(m.num_samples >= 1 for m in record.metadata.values())

    def test_empty_round_rejected(self, adapter):
        with pytest.raises(ConfigurationError):
            adapter.on_round_complete(RoundEvent(round_id=0, client_weights={}))

    def test_relayed_rounds_can_be_served(self, adapter):
        for round_id in range(3):
            adapter.on_round_complete(self._event(round_id))
        flstore = adapter.flstore
        result = flstore.serve(flstore.make_request("cosine_similarity", round_id=2))
        assert result.cache_misses == 0
        assert len(result.result["clients"]) == 4


class TestTenantClocks:
    @pytest.fixture()
    def populated(self, small_config, rounds):
        manager = MultiTenantFLStore(small_config)
        manager.register_tenant("tenant-a")
        manager.register_tenant("tenant-b")
        for record in rounds[:3]:
            manager.ingest_round("tenant-a", record)
            manager.ingest_round("tenant-b", record)
        return manager

    @staticmethod
    def _request(manager, tenant_id):
        return manager.tenant(tenant_id).flstore.make_request("inference", round_id=2)

    def test_serve_accepts_now_and_advances_only_that_tenant(self, populated):
        clock_a = populated.tenant("tenant-a").flstore.clock
        clock_b = populated.tenant("tenant-b").flstore.clock
        assert clock_a is not clock_b
        populated.serve("tenant-a", self._request(populated, "tenant-a"), now=100.0)
        assert clock_a.now() >= 100.0
        assert clock_b.now() < 100.0  # tenant-b's clock never moved

    def test_interleaved_tenants_keep_independent_timelines(self, populated):
        clock_a = populated.tenant("tenant-a").flstore.clock
        clock_b = populated.tenant("tenant-b").flstore.clock
        populated.serve("tenant-a", self._request(populated, "tenant-a"), now=200.0)
        a_after_first = clock_a.now()
        populated.serve("tenant-b", self._request(populated, "tenant-b"), now=50.0)
        # Serving tenant-b advances only its own clock, to its own timestamp.
        assert clock_a.now() == a_after_first
        assert 50.0 <= clock_b.now() < a_after_first

    def test_now_is_monotonic_per_tenant(self, populated):
        clock_a = populated.tenant("tenant-a").flstore.clock
        populated.serve("tenant-a", self._request(populated, "tenant-a"), now=300.0)
        reached = clock_a.now()
        # A stale timestamp must not rewind the tenant's clock.
        populated.serve("tenant-a", self._request(populated, "tenant-a"), now=10.0)
        assert clock_a.now() >= reached

    def test_ingest_round_accepts_now(self, small_config, fresh_rounds):
        manager = MultiTenantFLStore(small_config)
        manager.register_tenant("tenant-a")
        manager.ingest_round("tenant-a", fresh_rounds[0], now=42.0)
        assert manager.tenant("tenant-a").flstore.clock.now() >= 42.0
