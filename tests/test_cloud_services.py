"""Object store, in-memory cache service, dedicated instance, pricing catalogue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.instance import DedicatedInstance
from repro.cloud.memory_cache import MemoryCacheService
from repro.cloud.object_store import ObjectStore
from repro.cloud.payload import payload_size_bytes
from repro.cloud.pricing import DEFAULT_PRICING, pricing_summary
from repro.common.errors import ConfigurationError, DataNotFoundError
from repro.common.units import GB, MB


@pytest.fixture()
def object_store(topology, cost_model):
    return ObjectStore(topology.objstore, cost_model)


@pytest.fixture()
def memory_cache(topology, cost_model, pricing):
    return MemoryCacheService(topology.cache, cost_model, pricing)


class TestPayloadSize:
    def test_size_bytes_attribute_wins(self):
        class Obj:
            size_bytes = 123

        assert payload_size_bytes(Obj()) == 123

    def test_bytes_use_length(self):
        assert payload_size_bytes(b"abc") == 3

    def test_numpy_uses_nbytes(self):
        assert payload_size_bytes(np.zeros(10, dtype=np.float64)) == 80

    def test_dict_with_size_bytes(self):
        assert payload_size_bytes({"size_bytes": 77}) == 77

    def test_fallback_is_positive(self):
        assert payload_size_bytes(12345) > 0


class TestObjectStore:
    def test_put_then_get_round_trip(self, object_store):
        object_store.put("key", {"payload": 1}, size_bytes=10 * MB)
        result = object_store.get("key")
        assert result.value == {"payload": 1}
        assert result.latency.communication_seconds > 0
        assert result.cost.request_dollars > 0

    def test_get_missing_raises(self, object_store):
        with pytest.raises(DataNotFoundError):
            object_store.get("nope")
        assert object_store.stats.missed_gets == 1

    def test_latency_scales_with_object_size(self, object_store):
        object_store.put("small", b"", size_bytes=1 * MB)
        object_store.put("large", b"", size_bytes=100 * MB)
        assert (
            object_store.get("large").latency.total_seconds
            > object_store.get("small").latency.total_seconds
        )

    def test_delete_is_idempotent(self, object_store):
        object_store.put("key", b"x", size_bytes=1)
        object_store.delete("key")
        object_store.delete("key")
        assert not object_store.contains("key")

    def test_total_stored_bytes_and_len(self, object_store):
        object_store.put("a", b"", size_bytes=10)
        object_store.put("b", b"", size_bytes=20)
        assert object_store.total_stored_bytes == 30
        assert len(object_store) == 2
        assert set(object_store.keys()) == {"a", "b"}

    def test_size_of(self, object_store):
        object_store.put("a", b"", size_bytes=10)
        assert object_store.size_of("a") == 10
        with pytest.raises(DataNotFoundError):
            object_store.size_of("b")

    def test_overwrite_replaces_size(self, object_store):
        object_store.put("a", b"", size_bytes=10)
        object_store.put("a", b"", size_bytes=50)
        assert object_store.total_stored_bytes == 50

    def test_storage_cost_positive(self, object_store):
        object_store.put("a", b"", size_bytes=10 * GB)
        assert object_store.storage_cost(720.0).storage_dollars > 0

    def test_stats_track_operations(self, object_store):
        object_store.put("a", b"", size_bytes=5)
        object_store.get("a")
        assert object_store.stats.puts == 1
        assert object_store.stats.gets == 1
        assert object_store.stats.bytes_read == 5


class TestMemoryCacheService:
    def test_put_get_round_trip(self, memory_cache):
        memory_cache.put("k", [1, 2, 3], size_bytes=5 * MB)
        assert memory_cache.get("k").value == [1, 2, 3]

    def test_missing_key_raises(self, memory_cache):
        with pytest.raises(DataNotFoundError):
            memory_cache.get("missing")

    def test_faster_than_object_store(self, memory_cache, object_store):
        object_store.put("k", b"", size_bytes=200 * MB)
        memory_cache.put("k", b"", size_bytes=200 * MB)
        assert (
            memory_cache.get("k").latency.total_seconds
            < object_store.get("k").latency.total_seconds
        )

    def test_provisioned_nodes_grow_with_volume(self, memory_cache, pricing):
        assert memory_cache.provisioned_nodes == 1
        memory_cache.put("big", b"", size_bytes=int(2.5 * pricing.cache_node_memory_gb * GB))
        assert memory_cache.provisioned_nodes >= 3

    def test_provisioned_cost_scales_with_hours(self, memory_cache):
        one = memory_cache.provisioned_cost(1.0).provisioned_dollars
        fifty = memory_cache.provisioned_cost(50.0).provisioned_dollars
        assert fifty == pytest.approx(50 * one)

    def test_delete_and_len(self, memory_cache):
        memory_cache.put("a", b"", size_bytes=1)
        memory_cache.delete("a")
        assert len(memory_cache) == 0
        assert not memory_cache.contains("a")


class TestDedicatedInstance:
    def test_execute_charges_compute_time(self, pricing):
        instance = DedicatedInstance(pricing, relative_speed=1.0)
        result = instance.execute(3600.0)
        assert result.latency.computation_seconds == pytest.approx(3600.0)
        assert result.cost.compute_dollars == pytest.approx(pricing.aggregator_cost_per_hour)

    def test_relative_speed_shortens_compute(self, pricing):
        fast = DedicatedInstance(pricing, relative_speed=0.5)
        assert fast.execute(10.0).latency.computation_seconds == pytest.approx(5.0)

    def test_rejects_nonpositive_speed(self, pricing):
        with pytest.raises(ConfigurationError):
            DedicatedInstance(pricing, relative_speed=0.0)

    def test_rejects_negative_compute(self, pricing):
        with pytest.raises(ValueError):
            DedicatedInstance(pricing).execute(-1.0)

    def test_occupancy_cost(self, pricing):
        instance = DedicatedInstance(pricing)
        assert instance.occupancy_cost(3600.0).compute_dollars == pytest.approx(
            pricing.aggregator_cost_per_hour
        )
        with pytest.raises(ValueError):
            instance.occupancy_cost(-1.0)

    def test_idle_cost(self, pricing):
        instance = DedicatedInstance(pricing)
        assert instance.idle_cost(50.0).provisioned_dollars == pytest.approx(
            50.0 * pricing.aggregator_cost_per_hour
        )

    def test_stats_accumulate(self, pricing):
        instance = DedicatedInstance(pricing, relative_speed=1.0)
        instance.execute(1.0)
        instance.execute(2.0)
        assert instance.stats.executions == 2
        assert instance.stats.busy_seconds == pytest.approx(3.0)


class TestPricingCatalogue:
    def test_summary_contains_every_service(self):
        summary = pricing_summary()
        assert {"aggregator_per_hour", "lambda_per_gb_second", "cache_node_per_hour"} <= set(summary)

    def test_default_pricing_matches_config(self):
        assert pricing_summary()["aggregator_per_hour"] == DEFAULT_PRICING.aggregator_cost_per_hour
