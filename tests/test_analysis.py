"""Analysis helpers: comparisons, tables, runner plumbing, capacity model."""

from __future__ import annotations

import pytest

from repro.analysis.capacity import (
    dedicated_cache_cost_per_hour,
    estimate_full_caching,
    estimate_tailored_caching,
    full_job_metadata_bytes,
)
from repro.analysis.comparison import absolute_reduction, percent_reduction, speedup
from repro.analysis.runner import KNOWN_SYSTEMS, prepare_setup, run_trace
from repro.analysis.tables import format_mapping, format_table
from repro.config import SimulationConfig
from repro.simulation.metrics import MetricsCollector


class TestComparison:
    def test_percent_reduction(self):
        assert percent_reduction(100.0, 25.0) == pytest.approx(75.0)
        assert percent_reduction(0.0, 10.0) == 0.0
        assert percent_reduction(10.0, 20.0) == pytest.approx(-100.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")

    def test_absolute_reduction(self):
        assert absolute_reduction(5.0, 3.0) == pytest.approx(2.0)


class TestTables:
    def test_format_table_aligns_columns(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 22.5}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_format_table_respects_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_format_value_scientific_for_tiny_numbers(self):
        text = format_table([{"v": 0.0000012}])
        assert "e-" in text

    def test_format_mapping(self):
        text = format_mapping({"x": 1, "y": 2})
        assert "x" in text and "y" in text


class TestRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        return prepare_setup(SimulationConfig.small(seed=5), num_rounds=5)

    def test_prepare_setup_builds_all_known_systems(self, setup):
        assert set(setup.systems) == set(KNOWN_SYSTEMS)
        assert len(setup.rounds) == 5
        assert setup.generator is not None

    def test_all_systems_share_the_same_rounds(self, setup):
        assert len(setup.flstore.catalog) == 5
        assert len(setup.objstore_agg.catalog) == 5
        assert len(setup.cache_agg.catalog) == 5

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            prepare_setup(SimulationConfig.small(), num_rounds=1, systems=("mainframe",))

    def test_run_trace_produces_records(self, setup):
        collector = MetricsCollector()
        trace = setup.generator.workload_trace("cosine_similarity", 3)
        records = run_trace(
            setup.flstore, trace, system_name="flstore", model_name="resnet18", collector=collector
        )
        assert len(records) == 3
        assert len(collector) == 3
        assert all(r.system == "flstore" for r in records)
        assert all(r.workload == "cosine_similarity" for r in records)

    def test_run_trace_infers_names(self, setup):
        trace = setup.generator.workload_trace("inference", 1)
        records = run_trace(setup.objstore_agg, trace)
        assert records[0].system == "objstore-agg"
        assert records[0].model_name == setup.config.job.model_name


class TestCapacityModel:
    def test_full_job_volume_matches_paper_scale(self):
        # Paper: ~79 TB for 1000 clients x 1000 rounds with EfficientNet.
        total_tb = full_job_metadata_bytes() / 1024**4
        assert 60 <= total_tb <= 100

    def test_full_caching_needs_thousands_of_functions(self):
        estimate = estimate_full_caching()
        assert estimate.functions_needed > 5000
        assert estimate.keepalive_cost_per_month > 10.0

    def test_tailored_footprint_is_orders_of_magnitude_smaller(self):
        full = estimate_full_caching()
        tailored = estimate_tailored_caching()
        assert tailored.total_bytes < full.total_bytes / 1000
        assert tailored.functions_needed <= 2
        assert tailored.total_gb < 5.0

    def test_dedicated_cache_cost_scales_with_volume(self):
        small = dedicated_cache_cost_per_hour(10 * 1024**3)
        large = dedicated_cache_cost_per_hour(1000 * 1024**3)
        assert large > small
