"""Autoscaling: policies, the control-loop driver, and online tier resize."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.config import ServerlessConfig, SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.engine import (
    AUTOSCALER_KINDS,
    AutoscaleConfig,
    Autoscaler,
    ControlSignals,
    NullAutoscaler,
    PredictiveAutoscaler,
    ReactiveThresholdAutoscaler,
    ShardedEngineFLStore,
    make_autoscaler_policy,
)
from repro.fl.trainer import FLJobSimulator
from repro.serverless.platform import ServerlessPlatform
from repro.traces.generator import RequestTraceGenerator
from repro.workloads.registry import list_workloads


def _signals(
    now=0.0,
    queue_depth=0,
    arrival_rate=0.0,
    shed_delta=0,
    active_shards=1,
    slots_per_function=1,
    **overrides,
):
    capacity = slots_per_function * active_shards
    values = dict(
        now=now,
        queue_depth=queue_depth,
        arrival_rate=arrival_rate,
        arrival_rate_ewma=arrival_rate,
        shed_delta=shed_delta,
        degraded_delta=0,
        requeued_delta=0,
        active_shards=active_shards,
        slots_per_function=slots_per_function,
        capacity_units=capacity,
        inflight=queue_depth,
    )
    values.update(overrides)
    return ControlSignals(**values)


# ---------------------------------------------------------------------------
# Policies (unit level, synthetic signals)
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_factory_builds_every_kind_and_rejects_unknown(self):
        for kind in AUTOSCALER_KINDS:
            policy = make_autoscaler_policy(kind, mean_service_seconds=2.0)
            assert policy.name == kind
        with pytest.raises(ValueError):
            make_autoscaler_policy("nope")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AutoscaleConfig(control_interval_seconds=0)
        with pytest.raises(ConfigurationError):
            AutoscaleConfig(min_shards=4, max_shards=2)
        with pytest.raises(ConfigurationError):
            AutoscaleConfig(low_backlog_per_unit=1.0, high_backlog_per_unit=0.5)
        with pytest.raises(ConfigurationError):
            AutoscaleConfig(target_utilization=0.0)
        with pytest.raises(ConfigurationError):
            PredictiveAutoscaler(mean_service_seconds=0.0)

    def test_null_policy_always_holds(self):
        policy = NullAutoscaler()
        assert policy.decide(_signals(queue_depth=100, shed_delta=50)).is_hold

    def test_reactive_scales_up_on_backlog_and_respects_cooldown(self):
        policy = ReactiveThresholdAutoscaler(AutoscaleConfig(scale_up_cooldown_seconds=10.0))
        decision = policy.decide(_signals(now=0.0, queue_depth=5, slots_per_function=2))
        assert decision.target_capacity_units == 3  # backlog 2.5/unit > 1.0 high watermark
        # Within the up-cooldown: hold even under pressure.
        assert policy.decide(_signals(now=5.0, queue_depth=9, slots_per_function=2)).is_hold
        # Past the cooldown it acts again.
        assert not policy.decide(_signals(now=10.0, queue_depth=9, slots_per_function=2)).is_hold

    def test_reactive_steps_harder_when_shedding(self):
        policy = ReactiveThresholdAutoscaler()
        decision = policy.decide(_signals(queue_depth=4, shed_delta=6))
        assert decision.target_capacity_units == 1 + 1 + 6 // 2

    def test_reactive_scales_down_below_low_watermark_only(self):
        config = AutoscaleConfig(scale_down_cooldown_seconds=30.0)
        policy = ReactiveThresholdAutoscaler(config)
        # Mid-band backlog: hysteresis holds.
        assert policy.decide(_signals(queue_depth=2, slots_per_function=4)).is_hold
        decision = policy.decide(_signals(now=0.0, queue_depth=0, slots_per_function=4))
        assert decision.target_capacity_units == 3
        # Down-cooldown prevents immediate repeat; at the floor it holds too.
        assert policy.decide(_signals(now=10.0, queue_depth=0, slots_per_function=4)).is_hold
        assert policy.decide(_signals(now=100.0, queue_depth=0)).is_hold  # already at min

    def test_reactive_holds_at_capacity_ceiling(self):
        config = AutoscaleConfig(max_shards=2, max_slots_per_function=2)
        policy = ReactiveThresholdAutoscaler(config)
        ceiling = _signals(queue_depth=50, active_shards=2, slots_per_function=2)
        assert policy.decide(ceiling).is_hold

    def test_predictive_scales_ahead_of_a_ramp(self):
        config = AutoscaleConfig(forecast_lead_seconds=15.0, control_interval_seconds=5.0)
        policy = PredictiveAutoscaler(mean_service_seconds=5.0, config=config)
        decision = None
        for tick, rate in enumerate((0.1, 0.2, 0.3, 0.4)):
            decision = policy.decide(_signals(now=5.0 * tick, arrival_rate=rate))
        # The Holt trend extrapolates the ramp: the forecast exceeds the last
        # sample, so the target covers more than the current rate needs.
        assert policy.forecast_rate > 0.4
        assert decision.target_capacity_units >= 3

    def test_predictive_releases_capacity_on_a_downslope(self):
        config = AutoscaleConfig(forecast_lead_seconds=15.0, control_interval_seconds=5.0)
        policy = PredictiveAutoscaler(mean_service_seconds=5.0, config=config)
        decision = None
        for tick, rate in enumerate((0.8, 0.6, 0.4, 0.2)):
            signals = _signals(now=5.0 * tick, arrival_rate=rate, slots_per_function=4)
            decision = policy.decide(signals)
        # On a downslope the trend is negative, so the forecast undershoots
        # the smoothed level and capacity is handed back ahead of the trough.
        assert policy.forecast_rate < policy._level
        assert decision is not None and decision.target_capacity_units < 4

    def test_predictive_respects_capacity_bounds(self):
        config = AutoscaleConfig(max_shards=2, max_slots_per_function=2)
        policy = PredictiveAutoscaler(mean_service_seconds=100.0, config=config)
        decision = policy.decide(_signals(arrival_rate=10.0))
        assert decision.target_capacity_units == config.max_capacity_units


# ---------------------------------------------------------------------------
# Platform- and engine-level capacity scaling
# ---------------------------------------------------------------------------


class TestConcurrencyScaling:
    def test_platform_rescale_grants_queued_waiters(self):
        platform = ServerlessPlatform(config=ServerlessConfig(function_concurrency=1))
        function, _ = platform.spawn_function()
        fid = function.function_id
        assert platform.try_acquire_slot(fid)
        platform.enqueue_waiter(fid, "first")
        platform.enqueue_waiter(fid, "second")
        granted = platform.set_function_concurrency(2)
        assert granted == ["first"]
        assert function.concurrency_limit == 2
        assert function.active_executions == 2
        assert platform.queue_depth(fid) == 1

    def test_lowering_concurrency_is_lazy(self):
        platform = ServerlessPlatform(config=ServerlessConfig(function_concurrency=3))
        function, _ = platform.spawn_function()
        fid = function.function_id
        for _ in range(3):
            assert platform.try_acquire_slot(fid)
        assert platform.set_function_concurrency(1) == []
        # Active executions finish normally; no new slot is granted above
        # the lowered limit.
        assert function.active_executions == 3
        assert not function.has_execution_slot
        platform.release_slot(fid)
        platform.release_slot(fid)
        assert function.active_executions == 1
        assert not function.has_execution_slot

    def test_rescale_applies_to_future_spawns_and_rejects_nonpositive(self):
        platform = ServerlessPlatform()
        platform.set_function_concurrency(4)
        function, _ = platform.spawn_function()
        assert function.concurrency_limit == 4
        assert platform.function_concurrency == 4
        with pytest.raises(ValueError):
            platform.set_function_concurrency(0)

    def test_provisioned_slots_and_gb_track_limits(self):
        platform = ServerlessPlatform(config=ServerlessConfig(function_concurrency=2))
        platform.spawn_function()
        platform.spawn_function()
        assert platform.provisioned_slots == 4
        assert platform.provisioned_gb == pytest.approx(2 * 2 * 4.0)  # 2 fns x 2 slots x 4 GB


# ---------------------------------------------------------------------------
# The resizable tier
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def scale_config():
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="module")
def scale_rounds(scale_config):
    return FLJobSimulator(scale_config).run_rounds(8)


def _built_tier(config, rounds, **kwargs):
    tier = ShardedEngineFLStore.build(1, config=config, **kwargs)
    for record in rounds:
        tier.ingest_round(record)
    return tier


class TestOnlineResize:
    def test_add_shard_joins_cold_and_receives_traffic(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds)
        warm_before = tier.shards[0].flstore.cached_bytes
        assert warm_before > 0
        index = tier.add_shard()
        assert index == 1 and tier.num_shards == 2
        new_shard = tier.shards[1]
        # Same catalog, but a cold cache: the warmup transient is real.
        assert new_shard.catalog.rounds() == tier.shards[0].catalog.rounds()
        assert new_shard.flstore.cached_bytes == 0
        generator = RequestTraceGenerator(tier.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering", "scheduling_perf"], 30)
        report = tier.run_open_loop(trace, [0.2 * i for i in range(len(trace))], label="mix")
        assert report.served + report.degraded + report.shed == report.submitted
        assert tier.routed_counts[1] > 0

    def test_add_after_remove_reuses_the_retired_shard(self, scale_config, scale_rounds):
        """A diurnal add/remove cycle must reuse one chassis — not rebuild a
        store per peak — and a re-activated shard catches up the rounds it
        missed while retired (still joining with a cold cache)."""
        from repro.fl.trainer import FLJobSimulator

        tier = _built_tier(scale_config, scale_rounds)
        added = tier.add_shard()
        tier.remove_shard()
        extra = FLJobSimulator(scale_config).run_rounds(10)[8:]
        for record in extra:
            tier.ingest_round(record)
        reused = tier.add_shard()
        assert reused == added
        assert len(tier.shards) == 2
        shard = tier.shards[reused]
        assert shard.catalog.rounds() == tier.shards[0].catalog.rounds()
        assert shard.flstore.cached_bytes == 0  # catch-up still joins cold

    def test_resize_preserves_router_parameters(self, scale_config, scale_rounds):
        from repro.routing import ConsistentHashRouter

        tier = _built_tier(scale_config, scale_rounds, router=ConsistentHashRouter(1, vnodes=16))
        tier.add_shard()
        assert isinstance(tier.router, ConsistentHashRouter)
        assert tier.router.num_shards == 2
        assert tier.router.vnodes == 16
        tier.remove_shard()
        assert tier.router.vnodes == 16 and tier.router.num_shards == 1

    def test_add_shard_requires_factory(self, scale_config, scale_rounds):
        flstore = build_default_flstore(scale_config)
        for record in scale_rounds:
            flstore.ingest_round(record)
        tier = ShardedEngineFLStore([flstore])
        with pytest.raises(RuntimeError):
            tier.add_shard()

    def test_remove_shard_is_lifo_and_guards_last(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds)
        with pytest.raises(ConfigurationError):
            tier.remove_shard()
        added = tier.add_shard()
        assert tier.remove_shard() == added
        assert tier.num_shards == 1
        stats = tier.shard_stats()
        assert stats[0]["active"] and not stats[1]["active"]
        # Retirement released the shard's warm capacity.
        assert tier.shards[added].flstore.warm_function_count == 0

    def test_mid_run_resize_routes_and_conserves(self, scale_config, scale_rounds):
        """Requests arriving after a mid-run add land on the new shard, and
        a mid-run remove drains its waiters as requeued — conservation holds
        through both resizes."""
        tier = _built_tier(scale_config, scale_rounds, max_queue_depth=0)
        generator = RequestTraceGenerator(tier.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering", "scheduling_perf"], 40)
        arrivals = [0.5 * i for i in range(len(trace))]
        tier.loop.schedule_at(2.0, tier.add_shard)
        report = tier.run_open_loop(trace, arrivals, label="resize")
        assert report.served + report.degraded + report.shed == report.submitted
        assert tier.num_shards == 2
        assert tier.routed_counts[1] > 0

    def test_remove_shard_requeues_waiters(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds, max_queue_depth=0)
        tier.add_shard()
        generator = RequestTraceGenerator(tier.catalog, seed=3)
        # A simultaneous burst on every shard queues waiters behind the
        # single execution slot; removing the newest shard mid-run drains
        # its waiters without losing them.
        trace = generator.mixed_trace(["inference", "clustering", "scheduling_perf"], 24)
        tier.loop.schedule_at(0.5, tier.remove_shard)
        report = tier.run_open_loop(trace, [0.0] * len(trace), label="drain")
        assert report.served + report.degraded + report.shed == report.submitted
        assert report.completed == report.submitted
        if tier.requeued_requests:
            assert report.requeued == tier.requeued_requests

    def test_added_shard_rebounds_queues_with_tier_override(self, scale_config, scale_rounds):
        """Regression: shard add must re-bound per-function queues in
        lockstep with the tier's max_queue_depth override, not the config
        value — otherwise an admitted burst crashes on the config-sized
        queue (the PR-3 invariant, extended to resize)."""
        from dataclasses import replace

        config = replace(
            scale_config,
            serverless=replace(scale_config.serverless, max_queue_depth=2),
        )
        tier = _built_tier(config, scale_rounds, max_queue_depth=0)
        tier.add_shard()
        added = tier.shards[-1]
        assert added.max_queue_depth == 0
        assert added.platform.request_queue("probe").capacity == 0
        generator = RequestTraceGenerator(tier.catalog, seed=3)
        trace = generator.workload_trace("inference", 12)
        report = tier.run_open_loop(trace, [0.0] * len(trace), label="burst")
        assert report.shed == 0 and report.degraded == 0
        assert report.served == report.submitted

    def test_added_shard_inherits_tighter_bound_and_slots(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds, max_queue_depth=3)
        tier.set_function_concurrency(2)
        tier.add_shard()
        added = tier.shards[-1]
        assert added.max_queue_depth == 3
        assert added.platform.request_queue("probe").capacity == 3
        assert added.platform.function_concurrency == 2

    def test_raising_slots_mid_run_shortens_the_burst(self, scale_config, scale_rounds):
        def run(rescale: bool) -> float:
            tier = _built_tier(scale_config, scale_rounds, max_queue_depth=0)
            generator = RequestTraceGenerator(tier.catalog, seed=3)
            trace = generator.workload_trace("inference", 8)
            if rescale:
                tier.loop.schedule_at(0.5, lambda: tier.set_function_concurrency(4))
            report = tier.run_open_loop(trace, [0.0] * len(trace), label="burst")
            return max(outcome.completed_at for outcome in report.outcomes)

        assert run(rescale=True) < run(rescale=False)


# ---------------------------------------------------------------------------
# The control-loop driver
# ---------------------------------------------------------------------------


class TestAutoscalerDriver:
    def test_factor_target_prefers_slots_then_shards(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds)
        autoscaler = Autoscaler(tier, NullAutoscaler(), AutoscaleConfig(max_slots_per_function=4))
        assert autoscaler._factor_target(3, current_shards=1, current_slots=1) == (1, 3)
        assert autoscaler._factor_target(5, current_shards=1, current_slots=1) == (2, 3)
        # Shard-count hysteresis: a target of 3 still fits comfortably in one
        # shard, so the second shard is retired only with a unit of slack.
        assert autoscaler._factor_target(4, current_shards=2, current_slots=2) == (2, 2)
        assert autoscaler._factor_target(3, current_shards=2, current_slots=2) == (1, 3)

    def test_factor_target_never_swallows_a_scale_down(self, scale_config, scale_rounds):
        """Regression: at 2 shards x 4 slots a one-unit release used to round
        straight back to (2, 4) and the tier could never give capacity back;
        the driver now actuates the single step closest to the target."""
        tier = _built_tier(scale_config, scale_rounds)
        autoscaler = Autoscaler(tier, NullAutoscaler(), AutoscaleConfig(max_slots_per_function=4))
        assert autoscaler._factor_target(7, current_shards=2, current_slots=4) == (2, 3)
        # A genuine hold (target == current capacity) is still a no-op.
        assert autoscaler._factor_target(8, current_shards=2, current_slots=4) == (2, 4)
        # At high shard counts the slot step releases one unit *per shard*
        # (8x3 = 24), so a one-unit ask actuates as one shard fewer instead
        # (7x4 = 28 — the least overshoot the actuator can express).
        assert autoscaler._factor_target(31, current_shards=8, current_slots=4) == (7, 4)
        # At the slot floor only the shard step remains.
        assert autoscaler._factor_target(2, current_shards=3, current_slots=1) == (2, 1)

    def test_scale_up_never_lowers_warm_slots(self, scale_config, scale_rounds):
        """A target crossing a shard boundary must not retire warm instances
        on the existing shards while the new shard is still cold: 2x4 asked
        for 9 units factors to (3, 4), never (3, 3)."""
        tier = _built_tier(scale_config, scale_rounds)
        autoscaler = Autoscaler(tier, NullAutoscaler(), AutoscaleConfig(max_slots_per_function=4))
        assert autoscaler._factor_target(9, current_shards=2, current_slots=4) == (3, 4)
        assert autoscaler._factor_target(5, current_shards=1, current_slots=4) == (2, 4)

    def test_null_autoscaler_accrues_fixed_capacity(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds)
        autoscaler = Autoscaler(tier, NullAutoscaler())
        generator = RequestTraceGenerator(tier.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering"], 10)
        report = tier.run_open_loop(
            trace, [1.0 * i for i in range(len(trace))], label="fixed", autoscaler=autoscaler
        )
        summary = autoscaler.summary()
        assert summary.scale_events == 0
        assert summary.final_shards == 1
        horizon = max(o.completed_at for o in report.outcomes)
        # Fixed capacity: the integral is capacity x elapsed time (the loop
        # may outlive the last completion by up to one control tick).
        assert summary.capacity_unit_seconds >= tier.capacity_units * horizon
        assert summary.warm_capacity_cost_dollars > 0

    def test_autoscaler_drives_exactly_one_run(self, scale_config, scale_rounds):
        tier = _built_tier(scale_config, scale_rounds)
        autoscaler = Autoscaler(tier, NullAutoscaler())
        autoscaler.start()
        with pytest.raises(RuntimeError):
            autoscaler.start()

    def test_do_nothing_autoscaler_is_byte_identical(self, scale_config, scale_rounds):
        """The pinned guarantee that autoscaling is purely additive: a tier
        driven by the do-nothing policy reproduces the plain tier byte for
        byte — rows, report, and timings — for every registered workload."""

        def build_tier():
            flstore = build_default_flstore(scale_config)
            for record in scale_rounds:
                flstore.ingest_round(record)
            return ShardedEngineFLStore([flstore])

        for workload_name in list_workloads():
            plain = build_tier()
            scaled = build_tier()
            autoscaler = Autoscaler(scaled, NullAutoscaler())
            gen_plain = RequestTraceGenerator(plain.catalog, seed=3)
            gen_scaled = RequestTraceGenerator(scaled.catalog, seed=3)
            trace_plain = gen_plain.workload_trace(workload_name, 4)
            trace_scaled = gen_scaled.workload_trace(workload_name, 4)
            arrivals = [0.0, 0.0, 0.5, 1.0]
            report_plain = plain.run_open_loop(trace_plain, arrivals, label="x", keepalive=True)
            report_scaled = scaled.run_open_loop(
                trace_scaled, arrivals, label="x", keepalive=True, autoscaler=autoscaler
            )
            assert report_scaled.row() == report_plain.row(), workload_name
            rows_plain = report_plain.to_records(system="s", model_name="m")
            rows_scaled = report_scaled.to_records(system="s", model_name="m")
            assert rows_scaled == rows_plain, workload_name
            timings_plain = [
                (o.request.request_id, o.arrived_at, o.started_at, o.completed_at, o.disposition)
                for o in report_plain.outcomes
            ]
            timings_scaled = [
                (o.request.request_id, o.arrived_at, o.started_at, o.completed_at, o.disposition)
                for o in report_scaled.outcomes
            ]
            assert timings_scaled == timings_plain, workload_name


# ---------------------------------------------------------------------------
# The autoscale sweep
# ---------------------------------------------------------------------------


class TestAutoscaleSweep:
    def test_sweep_conserves_and_reports_capacity_columns(self):
        from repro.analysis.experiments import run_autoscale_sweep

        result = run_autoscale_sweep(
            policies=("none", "reactive"),
            utilizations=(2.0,),
            num_rounds=5,
            num_requests=24,
            max_queue_depth=3,
        )
        rows = result["rows"]
        assert [row["autoscaler"] for row in rows] == ["none", "reactive"]
        for row in rows:
            assert row["conserved"] is True
            assert row["served"] + row["shed"] + row["degraded"] == 24
            assert row["capacity_unit_seconds"] > 0
            assert row["warm_capacity_cost_dollars"] > 0
        none_row = rows[0]
        assert none_row["scale_events"] == 0

    def test_reactive_vs_predictive_ordering_is_deterministic(self):
        """The acceptance comparison, pinned at the default seed: on the
        diurnal process the predictive policy beats the reactive one on p99
        sojourn AND shed rate at no more warm-capacity cost — and the whole
        sweep is reproducible row for row."""
        from repro.analysis.experiments import compare_autoscale_policies, run_autoscale_sweep

        def run_once():
            result = run_autoscale_sweep(
                policies=("reactive", "predictive"),
                utilizations=(2.5,),
                num_rounds=12,
                num_requests=160,
                seed=7,
            )
            return result["rows"]

        first = run_once()
        second = run_once()
        assert first == second
        by_policy = {row["autoscaler"]: row for row in first}
        reactive, predictive = by_policy["reactive"], by_policy["predictive"]
        assert predictive["shed_rate"] <= reactive["shed_rate"]
        assert predictive["p99_sojourn_seconds"] <= reactive["p99_sojourn_seconds"]
        assert predictive["capacity_unit_seconds"] <= reactive["capacity_unit_seconds"]
        # The predictive policy actually scales ahead (it moves capacity),
        # and both policies conserve every offered request.
        assert predictive["scale_events"] > 0
        assert all(row["conserved"] for row in first)
        comparisons = compare_autoscale_policies(first)
        assert comparisons and comparisons[0]["capacity_cost_ratio"] <= 1.0
