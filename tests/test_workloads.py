"""The non-training workloads: data requirements, computations, taxonomy registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.models import get_model_spec
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest
from repro.workloads.clustering import kmeans
from repro.workloads.cosine_similarity import pairwise_cosine
from repro.workloads.registry import (
    EVALUATION_WORKLOADS,
    TAXONOMY,
    WORKLOAD_DISPLAY_NAMES,
    get_workload,
    list_workloads,
    policy_for_workload,
    register_workload,
)


@pytest.fixture(scope="module")
def catalog(rounds):
    catalog = RoundCatalog()
    for record in rounds:
        catalog.register_round(record)
    return catalog


@pytest.fixture(scope="module")
def rounds_by_id(rounds):
    return {record.round_id: record for record in rounds}


def _data_for(workload, request, catalog, rounds_by_id):
    """Gather the objects a request needs straight from the round records."""
    data = {}
    for key in workload.required_keys(request, catalog):
        record = rounds_by_id.get(key.round_id)
        if record is None:
            continue
        try:
            data[key] = record.get(key)
        except KeyError:
            continue
    return data


def _request(workload, round_id, client_id=None, **params):
    return WorkloadRequest(
        request_id=f"t-{workload}-{round_id}",
        workload=workload,
        round_id=round_id,
        client_id=client_id,
        params=params,
    )


class TestRegistry:
    def test_all_ten_evaluation_workloads_registered(self):
        assert set(EVALUATION_WORKLOADS) <= set(list_workloads())
        assert len(EVALUATION_WORKLOADS) == 10

    def test_taxonomy_matches_table1(self):
        assert TAXONOMY["inference"] == "P1"
        assert TAXONOMY["malicious_filtering"] == "P2"
        assert TAXONOMY["clustering"] == "P2"
        assert TAXONOMY["personalization"] == "P2"
        assert TAXONOMY["cosine_similarity"] == "P2"
        assert TAXONOMY["reputation"] == "P2"
        assert TAXONOMY["scheduling_cluster"] == "P2"
        assert TAXONOMY["debugging"] == "P3"
        assert TAXONOMY["incentives"] == "P4"
        assert TAXONOMY["scheduling_perf"] == "P4"
        assert TAXONOMY["hyperparameter_tuning"] == "P4"

    def test_display_names_present(self):
        assert WORKLOAD_DISPLAY_NAMES["scheduling_cluster"] == "Sched. (Cluster)"
        assert WORKLOAD_DISPLAY_NAMES["cosine_similarity"] == "Cosine similarity"

    def test_get_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("no-such-workload")

    def test_policy_for_workload(self):
        assert policy_for_workload("debugging") is PolicyClass.P3_ACROSS_ROUNDS

    def test_register_rejects_duplicates_unless_replace(self):
        class Custom(Workload):
            name = "inference"
            policy_class = PolicyClass.P1_INDIVIDUAL

            def required_keys(self, request, catalog):
                return []

            def compute(self, request, data):
                return {}

        with pytest.raises(ValueError):
            register_workload(Custom())
        # Replacing and restoring keeps the registry intact for other tests.
        original = get_workload("inference")
        register_workload(Custom(), replace=True)
        assert isinstance(get_workload("inference"), Custom)
        register_workload(original, replace=True)


class TestComputeTimeModel:
    def test_scales_with_items_and_model_size(self):
        workload = get_workload("malicious_filtering")
        small_model = get_model_spec("mobilenet_v3_small")
        big_model = get_model_spec("swin_transformer_v2_tiny")
        assert workload.compute_seconds(big_model, 10) > workload.compute_seconds(small_model, 10)
        assert workload.compute_seconds(big_model, 20) > workload.compute_seconds(big_model, 10)

    def test_average_compute_in_paper_ballpark(self):
        # Figure 4: average computation latency across workloads ~2.8 s for
        # the evaluation models with ~10 client updates per round.
        spec = get_model_spec("efficientnet_v2_small")
        times = [get_workload(name).compute_seconds(spec, 10) for name in EVALUATION_WORKLOADS]
        assert 1.0 <= float(np.mean(times)) <= 6.0

    def test_clustering_is_heaviest_p2_workload(self):
        spec = get_model_spec("efficientnet_v2_small")
        clustering = get_workload("clustering").compute_seconds(spec, 10)
        cosine = get_workload("cosine_similarity").compute_seconds(spec, 10)
        assert clustering > 10 * cosine


class TestRequiredKeys:
    def test_p2_workloads_need_all_round_updates(self, catalog):
        for name in ("malicious_filtering", "clustering", "cosine_similarity", "reputation"):
            workload = get_workload(name)
            keys = workload.required_keys(_request(name, 3), catalog)
            update_keys = [k for k in keys if k.is_update]
            assert {k.client_id for k in update_keys} == set(catalog.participants(3))
            assert all(k.round_id == 3 for k in update_keys)

    def test_inference_needs_only_aggregate(self, catalog):
        keys = get_workload("inference").required_keys(_request("inference", 5), catalog)
        assert keys == [DataKey.aggregate(5)]

    def test_debugging_follows_one_client(self, catalog):
        client = catalog.participants(4)[0]
        keys = get_workload("debugging").required_keys(
            _request("debugging", 4, client_id=client), catalog
        )
        assert all(k.client_id == client for k in keys if k.is_update)
        assert any(k.is_aggregate for k in keys)

    def test_debugging_without_client_falls_back_to_participant(self, catalog):
        keys = get_workload("debugging").required_keys(_request("debugging", 4), catalog)
        assert any(k.is_update for k in keys)

    def test_p4_workloads_need_recent_metadata_only(self, catalog):
        for name in ("incentives", "scheduling_perf", "hyperparameter_tuning"):
            keys = get_workload(name).required_keys(_request(name, 9, recent_rounds=3), catalog)
            assert keys
            assert all(k.is_metadata for k in keys)
            assert {k.round_id for k in keys} <= {7, 8, 9}

    def test_personalization_also_needs_aggregate(self, catalog):
        keys = get_workload("personalization").required_keys(_request("personalization", 2), catalog)
        assert DataKey.aggregate(2) in keys


class TestComputations:
    def test_inference_produces_predictions(self, catalog, rounds_by_id):
        workload = get_workload("inference")
        request = _request("inference", 3, batch_size=32)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert result["batch_size"] == 32
        assert len(result["predictions"]) == 32
        assert 0.0 <= result["positive_fraction"] <= 1.0

    def test_cosine_similarity_matrix_properties(self, catalog, rounds_by_id):
        workload = get_workload("cosine_similarity")
        request = _request("cosine_similarity", 2)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        matrix = np.array(result["similarity_matrix"])
        assert matrix.shape[0] == matrix.shape[1] == len(result["clients"])
        np.testing.assert_allclose(np.diag(matrix), 1.0, atol=1e-9)
        assert np.all(matrix <= 1.0 + 1e-9) and np.all(matrix >= -1.0 - 1e-9)

    def test_clustering_assigns_every_client(self, catalog, rounds_by_id):
        workload = get_workload("clustering")
        request = _request("clustering", 2, num_clusters=3)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert set(result["assignments"]) == set(catalog.participants(2))
        assert sum(result["cluster_sizes"]) == len(result["assignments"])
        assert result["inertia"] >= 0

    def test_personalization_groups_cover_participants(self, catalog, rounds_by_id):
        workload = get_workload("personalization")
        request = _request("personalization", 2, num_groups=2)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        grouped = sorted(cid for members in result["groups"].values() for cid in members)
        assert grouped == sorted(catalog.participants(2))

    def test_malicious_filtering_scores_every_client(self, catalog, rounds_by_id):
        workload = get_workload("malicious_filtering")
        request = _request("malicious_filtering", 2)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert set(result["scores"]) == set(catalog.participants(2))
        assert set(result["flagged_clients"]) <= set(catalog.participants(2))

    def test_reputation_in_unit_interval(self, catalog, rounds_by_id):
        workload = get_workload("reputation")
        request = _request("reputation", 2)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert result["reputations"]
        assert all(0.0 <= v <= 1.0 for v in result["reputations"].values())
        assert result["top_client"] in result["reputations"]

    def test_debugging_reports_drift(self, catalog, rounds_by_id):
        client = catalog.participants(5)[0]
        workload = get_workload("debugging")
        request = _request("debugging", 5, client_id=client)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert result["client_id"] == client
        assert len(result["update_norms"]) == len(result["rounds"])

    def test_incentives_respect_budget(self, catalog, rounds_by_id):
        workload = get_workload("incentives")
        request = _request("incentives", 9, budget_dollars=50.0)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert result["payouts"]
        assert sum(result["payouts"].values()) == pytest.approx(50.0, rel=1e-6)
        assert all(p >= 0 for p in result["payouts"].values())

    def test_scheduling_cluster_builds_tiers(self, catalog, rounds_by_id):
        workload = get_workload("scheduling_cluster")
        request = _request("scheduling_cluster", 2, num_tiers=2)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        tiered = sorted(cid for members in result["tiers"].values() for cid in members)
        assert tiered == sorted(catalog.participants(2))
        assert sorted(result["schedule"]) == tiered

    def test_scheduling_perf_selects_requested_count(self, catalog, rounds_by_id):
        workload = get_workload("scheduling_perf")
        request = _request("scheduling_perf", 9, clients_to_select=3)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert len(result["selected_clients"]) <= 3
        assert set(result["selected_clients"]) <= set(result["scores"])

    def test_hyperparameter_tuning_recommends_config(self, catalog, rounds_by_id):
        workload = get_workload("hyperparameter_tuning")
        request = _request("hyperparameter_tuning", 9)
        result = workload.compute(request, _data_for(workload, request, catalog, rounds_by_id))
        assert "learning_rate" in result["recommended"]
        assert result["num_configurations"] >= 1

    def test_missing_data_raises_or_degrades(self, catalog):
        workload = get_workload("inference")
        request = _request("inference", 3)
        with pytest.raises(WorkloadError):
            workload.compute(request, {})

    def test_empty_round_returns_empty_results(self):
        workload = get_workload("clustering")
        request = _request("clustering", 0)
        assert workload.compute(request, {}) == {
            "round_id": 0,
            "assignments": {},
            "num_clusters": 0,
        }


class TestNumericHelpers:
    def test_pairwise_cosine_identity(self):
        matrix = np.eye(3)
        similarity = pairwise_cosine(matrix)
        np.testing.assert_allclose(np.diag(similarity), 1.0)
        assert similarity[0, 1] == pytest.approx(0.0)

    def test_pairwise_cosine_handles_zero_rows(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        similarity = pairwise_cosine(matrix)
        assert np.isfinite(similarity).all()

    def test_kmeans_recovers_two_separated_blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(20, 4))
        b = rng.normal(5.0, 0.1, size=(20, 4))
        labels, centers = kmeans(np.vstack([a, b]), k=2, seed=1)
        assert centers.shape == (2, 4)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_kmeans_caps_k_at_number_of_points(self):
        labels, centers = kmeans(np.zeros((3, 2)), k=10, seed=1)
        assert centers.shape[0] <= 3
        assert len(labels) == 3


class TestWorkloadRequestValidation:
    def test_rejects_negative_round(self):
        with pytest.raises(WorkloadError):
            WorkloadRequest(request_id="x", workload="inference", round_id=-1)

    def test_rejects_zero_history(self):
        with pytest.raises(WorkloadError):
            WorkloadRequest(request_id="x", workload="debugging", round_id=0, history_rounds=0)
