"""Multi-tenant serving: TenantSpec, WFQ/DRR fairness, and the noisy-neighbor pin.

Covers the tenant-aware scenario API end to end: validation and round-trips
of :class:`TenantSpec`, dotted-path overrides under ``tenants.*``, the
weighted-fairness property of the ``wfq``/``drr`` queue disciplines, the
seed-7 noisy-neighbor isolation pin (a bursty tenant doubling its offered
load cannot move the steady tenant's p99 by more than its fair share under
WFQ/DRR, while FIFO demonstrably violates the steady tenant's SLO), the
``slo`` autoscaler policy, report serialization for tenant runs, and the
deprecation shim over the legacy ``MultiTenantFLStore``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import experiments as E
from repro.config import SimulationConfig
from repro.core.multitenant import MultiTenantFLStore
from repro.engine.autoscale import (
    AUTOSCALER_KINDS,
    AutoscaleConfig,
    ControlSignals,
    SLOViolationAutoscaler,
    make_autoscaler_policy,
)
from repro.scenario import (
    RunReport,
    ScenarioSpec,
    ScenarioValidationError,
    TenantSpec,
    apply_overrides,
    calibrate,
    field_value,
    get_scenario,
    run,
    smoke_spec,
)
from repro.serverless.function import RequestQueue
from repro.traces.arrivals import ARRIVAL_KINDS
from repro.workloads.registry import list_workloads


# ---------------------------------------------------------------------------
# TenantSpec validation matrix
# ---------------------------------------------------------------------------


class TestTenantSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "workloads": ()},
            {"name": "t", "workloads": ("no-such-workload",)},
            {"name": "t", "num_requests": 0},
            {"name": "t", "num_requests": -3},
            {"name": "t", "arrival": "no-such-process"},
            {"name": "t", "utilization": 0.0},
            {"name": "t", "utilization": -1.0},
            {"name": "t", "rate_rps": 0.0},
            {"name": "t", "rate_rps": -0.5},
            {"name": "t", "slo_multiplier": -1.0},
            {"name": "t", "weight": 0.0},
            {"name": "t", "weight": -2.0},
        ],
        ids=lambda kw: ",".join(f"{k}={v!r}" for k, v in kw.items()),
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ScenarioValidationError):
            TenantSpec(**kwargs)

    def test_workloads_accepts_comma_string(self):
        tenant = TenantSpec(name="t", workloads="inference, debugging")
        assert tenant.workloads == ("inference", "debugging")

    def test_zero_slo_multiplier_disables_the_slo(self):
        assert TenantSpec(name="t", slo_multiplier=0.0).slo_multiplier == 0.0

    def test_rate_rps_overrides_utilization(self):
        tenant = TenantSpec(name="t", rate_rps=2.5)
        assert tenant.rate_rps == 2.5

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ScenarioValidationError, match="duplicate tenant name"):
            ScenarioSpec(
                name="dup",
                tenants=(TenantSpec(name="a"), TenantSpec(name="a")),
            )

    def test_negative_priority_allowed(self):
        assert TenantSpec(name="t", priority=-1.5).priority == -1.5


# ---------------------------------------------------------------------------
# Hypothesis round-trip: tenant specs survive to_dict/from_dict unchanged
# ---------------------------------------------------------------------------


_bounded_floats = st.floats(
    min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False
)

tenant_specs = st.builds(
    TenantSpec,
    name=st.text(alphabet="abcdefghij-_0123456789", min_size=1, max_size=12),
    workloads=st.lists(
        st.sampled_from(sorted(list_workloads())), min_size=1, max_size=3, unique=True
    ).map(tuple),
    num_requests=st.integers(min_value=1, max_value=1000),
    arrival=st.sampled_from(ARRIVAL_KINDS),
    utilization=_bounded_floats,
    rate_rps=st.one_of(st.none(), _bounded_floats),
    slo_multiplier=st.floats(
        min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
    ),
    priority=st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
    weight=_bounded_floats,
)


@settings(max_examples=30, deadline=None)
@given(tenants=st.lists(tenant_specs, min_size=1, max_size=4, unique_by=lambda t: t.name))
def test_tenant_spec_round_trips_through_dict(tenants):
    spec = ScenarioSpec(name="round-trip", tenants=tuple(tenants))
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_tenant_spec_round_trips_through_toml(tmp_path):
    spec = ScenarioSpec(
        name="toml-trip",
        tenants=(
            TenantSpec(name="a", utilization=0.5, weight=2.0, priority=-1.0),
            TenantSpec(name="b", arrival="bursty", rate_rps=3.0, slo_multiplier=0.0),
        ),
    )
    path = tmp_path / "spec.toml"
    spec.save(path)
    assert ScenarioSpec.load(path) == spec


def test_pre_tenant_dicts_still_load():
    # Backwards compatibility: spec dicts/files written before tenants
    # existed (no "tenants" key) load to a tenant-free spec unchanged.
    plain = ScenarioSpec(name="plain")
    tree = plain.to_dict()
    tree.pop("tenants")
    assert ScenarioSpec.from_dict(tree) == plain
    assert plain.tenants == ()


# ---------------------------------------------------------------------------
# Dotted-path overrides under tenants.*
# ---------------------------------------------------------------------------


class TestTenantOverridePaths:
    @pytest.fixture()
    def spec(self):
        return get_scenario("noisy-neighbor")

    def test_field_value_by_name_and_index(self, spec):
        assert field_value(spec, "tenants.steady.weight") == 2.0
        assert field_value(spec, "tenants.0.name") == "steady"
        assert field_value(spec, "tenants.1.arrival") == "bursty"

    def test_override_by_name_is_typed(self, spec):
        out = apply_overrides(spec, {"tenants.steady.weight": "4"})
        assert field_value(out, "tenants.steady.weight") == 4.0
        # The sibling tenant is untouched.
        assert field_value(out, "tenants.bursty.weight") == 1.0

    def test_unknown_tenant_rejected(self, spec):
        with pytest.raises((ScenarioValidationError, KeyError)):
            apply_overrides(spec, {"tenants.ghost.weight": "2"})

    def test_invalid_value_rejected_through_override(self, spec):
        with pytest.raises(ScenarioValidationError):
            apply_overrides(spec, {"tenants.steady.weight": "0"})

    def test_smoke_spec_caps_every_tenant_trace(self, spec):
        shrunk = smoke_spec(spec, num_rounds=3, num_requests=8)
        assert all(t.num_requests == 8 for t in shrunk.tenants)


# ---------------------------------------------------------------------------
# WFQ/DRR property: service shares converge to weights under overload
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    discipline=st.sampled_from(["wfq", "drr"]),
    weight_a=st.integers(min_value=1, max_value=8),
    weight_b=st.integers(min_value=1, max_value=8),
)
def test_fair_disciplines_converge_to_weight_shares(discipline, weight_a, weight_b):
    """Two flows backlogged the whole time split service by weight ratio."""
    queue = RequestQueue(discipline)
    for index in range(300):
        queue.push(("a", index), flow="a", weight=float(weight_a))
        queue.push(("b", index), flow="b", weight=float(weight_b))
    pops = 200
    served = {"a": 0, "b": 0}
    for _ in range(pops):
        flow, _ = queue.pop()
        served[flow] += 1
    expected_share = weight_a / (weight_a + weight_b)
    observed_share = served["a"] / pops
    # Within one rotation (DRR) / one virtual-time round (WFQ) of exact.
    assert abs(observed_share - expected_share) <= max(weight_a, weight_b) / pops + 0.02


def test_fifo_ignores_weights():
    queue = RequestQueue("fifo")
    queue.push("heavy-1", flow="heavy", weight=100.0)
    queue.push("light-1", flow="light", weight=0.1)
    assert queue.pop() == "heavy-1"
    assert queue.pop() == "light-1"


# ---------------------------------------------------------------------------
# The seed-7 noisy-neighbor pin
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def noisy_neighbor_cells():
    """Noisy-neighbor runs: discipline x bursty offered load (1x, 2x)."""
    base = get_scenario("noisy-neighbor")
    base = apply_overrides(base, {"mean_service_seconds": calibrate(base)})
    cells = {}
    for discipline in ("fifo", "wfq", "drr"):
        for load in (1.0, 2.0):
            spec = apply_overrides(
                base,
                {
                    "tier.queue_discipline": discipline,
                    "tenants.bursty.utilization": load,
                },
            )
            cells[(discipline, load)] = run(spec)
    return cells


def _tenant_row(report: RunReport, name: str) -> dict:
    return next(row for row in report.tenants if row["tenant"] == name)


def test_every_cell_conserves_per_tenant(noisy_neighbor_cells):
    for (discipline, load), report in noisy_neighbor_cells.items():
        assert report.conserved, (discipline, load)
        for row in report.tenants:
            assert (
                row["served"] + row["requeued"] + row["degraded"] + row["shed"]
                == row["offered"]
            ), (discipline, load, row)


def test_wfq_and_drr_bound_the_steady_tenants_p99(noisy_neighbor_cells):
    """The isolation pin: weighted fairness holds the steady tenant inside
    its SLO at seed 7, and doubling the neighbour's offered load moves its
    p99 by no more than its fair share (a few percent)."""
    for discipline in ("wfq", "drr"):
        at_1x = _tenant_row(noisy_neighbor_cells[(discipline, 1.0)], "steady")
        at_2x = _tenant_row(noisy_neighbor_cells[(discipline, 2.0)], "steady")
        slo = at_1x["slo_seconds"]
        assert slo is not None
        for row in (at_1x, at_2x):
            assert row["violation_rate"] == 0.0, (discipline, row)
            assert row["p99_sojourn_seconds"] <= slo, (discipline, row)
        assert at_2x["p99_sojourn_seconds"] <= 1.10 * at_1x["p99_sojourn_seconds"]


def test_fifo_demonstrably_violates_the_steady_tenant(noisy_neighbor_cells):
    at_1x = _tenant_row(noisy_neighbor_cells[("fifo", 1.0)], "steady")
    at_2x = _tenant_row(noisy_neighbor_cells[("fifo", 2.0)], "steady")
    slo = at_1x["slo_seconds"]
    assert at_1x["violation_rate"] > 0.1
    assert at_1x["p99_sojourn_seconds"] > 1.5 * slo
    # Doubling the neighbour's load makes FIFO strictly worse.
    assert at_2x["violation_rate"] > at_1x["violation_rate"]
    # And weighted fairness beats FIFO outright on the steady tenant's tail.
    for discipline in ("wfq", "drr"):
        fair = _tenant_row(noisy_neighbor_cells[(discipline, 1.0)], "steady")
        assert fair["p99_sojourn_seconds"] < 0.6 * at_1x["p99_sojourn_seconds"]


def test_tenant_report_round_trips_through_json(noisy_neighbor_cells):
    report = noisy_neighbor_cells[("wfq", 1.0)]
    restored = RunReport.from_json(report.to_json())
    assert restored.to_dict() == report.to_dict()
    assert restored.tenants == report.tenants
    assert {row["tenant"] for row in restored.tenants} == {"steady", "bursty"}


def test_run_report_row_carries_per_tenant_columns(noisy_neighbor_cells):
    row = noisy_neighbor_cells[("wfq", 1.0)].row()
    for name in ("steady", "bursty"):
        for suffix in ("p99", "share", "violations", "warm_cost"):
            assert f"{name}_{suffix}" in row


def test_warm_capacity_cost_is_attributed_by_served_share(noisy_neighbor_cells):
    """The seed-7 cost-attribution pin: every tenant run prices its warm
    capacity and splits the total across tenants by share of requests that
    consumed service — shares sum to 1, dollars sum to the run total."""
    for (discipline, load), report in noisy_neighbor_cells.items():
        total = report.warm_capacity_cost_dollars
        assert total is not None and total > 0.0, (discipline, load)
        shares = [row["warm_cost_share"] for row in report.tenants]
        dollars = [row["warm_cost_dollars"] for row in report.tenants]
        assert sum(shares) == pytest.approx(1.0), (discipline, load)
        assert sum(dollars) == pytest.approx(total), (discipline, load)
        served = [row["served"] + row["requeued"] for row in report.tenants]
        for share, weight in zip(shares, served):
            assert share == pytest.approx(weight / sum(served)), (discipline, load)


def test_warm_cost_attribution_is_deterministic_at_seed_7():
    spec = smoke_spec(get_scenario("noisy-neighbor"))
    assert spec.seed == 7
    first, second = run(spec), run(spec)
    assert first.warm_capacity_cost_dollars == second.warm_capacity_cost_dollars
    assert first.tenants == second.tenants
    restored = RunReport.from_json(first.to_json())
    assert restored.warm_capacity_cost_dollars == first.warm_capacity_cost_dollars
    assert restored.tenants == first.tenants


# ---------------------------------------------------------------------------
# The slo autoscaler policy
# ---------------------------------------------------------------------------


def _signals(now=0.0, **kwargs) -> ControlSignals:
    defaults = dict(
        now=now,
        queue_depth=0,
        arrival_rate=1.0,
        arrival_rate_ewma=1.0,
        shed_delta=0,
        degraded_delta=0,
        requeued_delta=0,
        active_shards=1,
        slots_per_function=1,
        capacity_units=2,
        inflight=0,
    )
    defaults.update(kwargs)
    return ControlSignals(**defaults)


class TestSLOViolationAutoscaler:
    def test_registered_and_constructible(self):
        assert "slo" in AUTOSCALER_KINDS
        assert make_autoscaler_policy("slo").name == "slo"

    def test_scales_up_when_a_tenant_breaches_its_slo(self):
        policy = SLOViolationAutoscaler(AutoscaleConfig(slo_violation_target=0.05))
        decision = policy.decide(
            _signals(finished_delta=20, slo_violation_delta=0, max_tenant_violation_rate=0.5)
        )
        assert decision.target_capacity_units is not None
        assert decision.target_capacity_units > 2

    def test_step_grows_with_violations_over_target(self):
        policy = SLOViolationAutoscaler(AutoscaleConfig(slo_violation_target=0.05))
        decision = policy.decide(_signals(finished_delta=20, slo_violation_delta=9))
        # 9 violations against a target of 1 in 20: step = 1 + 8 // 2.
        assert decision.target_capacity_units == 2 + 5

    def test_holds_inside_the_scale_up_cooldown(self):
        config = AutoscaleConfig(slo_violation_target=0.05)
        policy = SLOViolationAutoscaler(config)
        first = policy.decide(_signals(now=0.0, finished_delta=10, slo_violation_delta=5))
        assert not first.is_hold
        again = policy.decide(
            _signals(
                now=config.scale_up_cooldown_seconds / 2,
                finished_delta=10,
                slo_violation_delta=5,
            )
        )
        assert again.is_hold

    def test_clean_window_with_idle_queue_scales_down(self):
        policy = SLOViolationAutoscaler(AutoscaleConfig(slo_violation_target=0.05))
        decision = policy.decide(_signals(finished_delta=10, slo_violation_delta=0))
        assert decision.target_capacity_units == 1

    def test_deep_queue_without_violations_holds(self):
        # The policy's defining behaviour: backlog alone is not a reason to
        # scale while every sojourn stays inside its SLO.
        policy = SLOViolationAutoscaler(AutoscaleConfig(slo_violation_target=0.05))
        decision = policy.decide(
            _signals(queue_depth=50, finished_delta=10, slo_violation_delta=0)
        )
        assert decision.is_hold


def test_slo_autoscaler_relieves_the_noisy_neighbor():
    """End to end: SLO-driven scaling on the routed tenant tier conserves
    requests, actually scales, and cuts the bursty tenant's violations."""
    base = get_scenario("noisy-neighbor")
    base = apply_overrides(
        base,
        {
            "mean_service_seconds": calibrate(base),
            "tier.router_kind": "jsq",
            "tier.autoscaler.enabled": True,
            "tier.autoscaler.policy": "slo",
        },
    )
    scaled = run(base)
    static = run(apply_overrides(base, {"tier.autoscaler.enabled": False}))
    assert scaled.conserved and static.conserved
    for report in (scaled, static):
        for row in report.tenants:
            assert (
                row["served"] + row["requeued"] + row["degraded"] + row["shed"]
                == row["offered"]
            )
    assert scaled.autoscale.policy == "slo"
    assert scaled.autoscale.scale_events >= 1
    scaled_bursty = _tenant_row(scaled, "bursty")
    static_bursty = _tenant_row(static, "bursty")
    assert scaled_bursty["violation_rate"] < static_bursty["violation_rate"]


# ---------------------------------------------------------------------------
# The run-tenants sweep entry point
# ---------------------------------------------------------------------------


def test_run_tenant_sweep_rows_and_comparisons():
    result = E.run_tenant_sweep(
        disciplines=("fifo", "wfq"),
        steady_weights=(2.0,),
        num_rounds=3,
        num_requests=12,
        seed=7,
    )
    rows = result["rows"]
    assert [row["discipline"] for row in rows] == ["fifo", "wfq"]
    for row in rows:
        assert row["conserved"] is True
        for column in E.TENANT_REPORT_COLUMNS:
            assert column in row, column
    comparisons = E.compare_tenant_disciplines(rows)
    assert len(comparisons) == 1
    assert comparisons[0]["discipline"] == "wfq"
    assert comparisons[0]["steady_weight"] == 2.0


def test_run_tenant_sweep_rejects_unknown_disciplines():
    with pytest.raises(ValueError, match="unknown queue disciplines"):
        E.run_tenant_sweep(disciplines=("fifo", "lifo"))


# ---------------------------------------------------------------------------
# The deprecated MultiTenantFLStore shim
# ---------------------------------------------------------------------------


class TestMultiTenantDeprecation:
    def test_construction_warns_with_the_replacement_snippet(self):
        with pytest.warns(DeprecationWarning, match="TenantSpec"):
            MultiTenantFLStore(SimulationConfig())

    def test_scenario_spec_bridges_registered_tenants(self):
        with pytest.warns(DeprecationWarning):
            manager = MultiTenantFLStore(SimulationConfig())
        manager.register_tenant("team-b")
        manager.register_tenant("team-a")
        spec = manager.scenario_spec(name="converted")
        assert isinstance(spec, ScenarioSpec)
        assert [t.name for t in spec.tenants] == ["team-a", "team-b"]
