"""Full end-to-end integration: training stream -> ingest -> mixed trace -> comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.runner import prepare_setup, run_trace
from repro.config import SimulationConfig
from repro.simulation.metrics import MetricsCollector
from repro.workloads.registry import EVALUATION_WORKLOADS


@pytest.fixture(scope="module")
def integration_setup():
    """A paper-style (but reduced-dimension) job with all three systems built."""
    config = SimulationConfig.paper(model_name="efficientnet_v2_small").with_job(
        reduced_dim=32, total_clients=60, clients_per_round=8
    )
    return prepare_setup(config, num_rounds=12)


class TestEndToEnd:
    def test_mixed_trace_served_by_all_systems(self, integration_setup):
        setup = integration_setup
        trace = setup.generator.mixed_trace(list(EVALUATION_WORKLOADS), 40)
        collector = MetricsCollector()
        for name, system in setup.systems.items():
            run_trace(system, trace, system_name=name, collector=collector)
        summaries = collector.by_system()
        assert set(summaries) == {"flstore", "objstore-agg", "cache-agg"}
        assert all(s.count == 40 for s in summaries.values())

        flstore = summaries["flstore"]
        objstore = summaries["objstore-agg"]
        cache = summaries["cache-agg"]

        # Headline paper shapes: FLStore wins on latency against both
        # baselines and on cost by a wide margin; the baselines are
        # communication-bound; Cache-Agg is the most expensive option.
        assert flstore.mean_latency_seconds < objstore.mean_latency_seconds
        assert flstore.mean_latency_seconds < cache.mean_latency_seconds
        assert flstore.mean_cost_dollars < 0.2 * objstore.mean_cost_dollars
        assert flstore.mean_cost_dollars < 0.1 * cache.mean_cost_dollars
        assert cache.mean_cost_dollars > objstore.mean_cost_dollars
        assert objstore.communication_fraction > 0.8
        assert flstore.hit_rate > 0.6

    def test_flstore_results_match_baseline_results(self, integration_setup):
        """Locality-aware execution must not change workload outputs."""
        setup = integration_setup
        latest = setup.flstore.catalog.latest_round
        for workload in ("malicious_filtering", "cosine_similarity", "incentives"):
            request = setup.generator.workload_trace(workload, 1, start_round=latest)[0]
            flstore_result = setup.flstore.serve(request).result
            baseline_result = setup.objstore_agg.serve(request).result
            if "flagged_clients" in flstore_result:
                assert flstore_result["flagged_clients"] == baseline_result["flagged_clients"]
            if "mean_similarity" in flstore_result:
                assert flstore_result["mean_similarity"] == pytest.approx(
                    baseline_result["mean_similarity"]
                )
            if "payouts" in flstore_result:
                assert flstore_result["payouts"].keys() == baseline_result["payouts"].keys()

    def test_cache_stays_bounded_over_long_ingest(self):
        config = SimulationConfig.small(seed=21).with_job(total_rounds=40)
        setup = prepare_setup(config, num_rounds=30, systems=("flstore",))
        flstore = setup.flstore
        per_round_bytes = setup.rounds[0].update_bytes
        # Working set stays within a few rounds of updates even after 30 rounds.
        assert flstore.cached_bytes < 5 * per_round_bytes
        assert flstore.warm_function_count < 10

    def test_long_mixed_trace_keeps_high_hit_rate(self, integration_setup):
        setup = integration_setup
        trace = setup.generator.mixed_trace(
            ["malicious_filtering", "clustering", "scheduling_perf", "inference"], 60
        )
        records = run_trace(setup.flstore, trace, system_name="flstore")
        hits = sum(r.cache_hits for r in records)
        misses = sum(r.cache_misses for r in records)
        assert hits / (hits + misses) > 0.75

    def test_metrics_reductions_in_paper_band(self, integration_setup):
        setup = integration_setup
        trace = setup.generator.workload_trace("malicious_filtering", 10)
        flstore_records = run_trace(setup.flstore, trace, system_name="flstore")
        objstore_records = run_trace(setup.objstore_agg, trace, system_name="objstore-agg")
        flstore_latency = np.mean([r.latency.total_seconds for r in flstore_records])
        objstore_latency = np.mean([r.latency.total_seconds for r in objstore_records])
        reduction = 100.0 * (objstore_latency - flstore_latency) / objstore_latency
        # Paper: 50.75 % average per-request latency reduction vs ObjStore-Agg
        # (up to 99.94 %); accept anything solidly above half.
        assert reduction > 50.0
