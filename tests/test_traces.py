"""Request trace generation."""

from __future__ import annotations

import pytest

from repro.fl.catalog import RoundCatalog
from repro.traces.generator import RequestTraceGenerator
from repro.workloads.registry import EVALUATION_WORKLOADS


class TestWorkloadTraces:
    def test_p2_trace_walks_rounds_in_order(self, flstore, trace_generator):
        trace = trace_generator.workload_trace("malicious_filtering", 5)
        assert [r.round_id for r in trace] == [0, 1, 2, 3, 4]
        assert all(r.workload == "malicious_filtering" for r in trace)

    def test_p2_trace_wraps_around(self, flstore, trace_generator):
        total_rounds = len(flstore.catalog)
        trace = trace_generator.workload_trace("clustering", total_rounds + 2)
        assert trace[-1].round_id == trace[1].round_id

    def test_p1_trace_targets_latest_round(self, flstore, trace_generator):
        trace = trace_generator.workload_trace("inference", 4)
        assert {r.round_id for r in trace} == {flstore.catalog.latest_round}

    def test_p3_trace_follows_single_client(self, flstore, trace_generator):
        trace = trace_generator.workload_trace("debugging", 4)
        clients = {r.client_id for r in trace}
        assert len(clients) == 1
        client = clients.pop()
        assert all(client in flstore.catalog.participants(r.round_id) for r in trace)

    def test_p3_trace_respects_requested_client(self, flstore, trace_generator):
        client = flstore.catalog.participants(3)[0]
        trace = trace_generator.workload_trace("debugging", 2, client_id=client)
        assert all(r.client_id == client for r in trace)

    def test_p4_trace_targets_recent_rounds(self, flstore):
        generator = RequestTraceGenerator(flstore.catalog, seed=1, recent_rounds=3)
        trace = generator.workload_trace("scheduling_perf", 6)
        recent = set(flstore.catalog.recent_rounds(3))
        assert {r.round_id for r in trace} <= recent

    def test_history_rounds_and_params_propagate(self, trace_generator):
        trace = trace_generator.workload_trace(
            "debugging", 2, history_rounds=1, recent_rounds=5
        )
        assert all(r.history_rounds == 1 for r in trace)
        assert all(r.params["recent_rounds"] == 5 for r in trace)

    def test_request_ids_are_unique(self, trace_generator):
        trace = trace_generator.workload_trace("clustering", 10)
        assert len({r.request_id for r in trace}) == 10

    def test_start_round_honoured(self, trace_generator):
        trace = trace_generator.workload_trace("clustering", 3, start_round=4)
        assert trace[0].round_id == 4

    def test_empty_catalog_rejected(self):
        generator = RequestTraceGenerator(RoundCatalog(), seed=1)
        with pytest.raises(ValueError):
            generator.workload_trace("clustering", 3)

    def test_negative_count_rejected(self, trace_generator):
        with pytest.raises(ValueError):
            trace_generator.workload_trace("clustering", -1)

    def test_zero_requests_allowed(self, trace_generator):
        assert trace_generator.workload_trace("clustering", 0) == []


class TestMixedTraces:
    def test_mixed_trace_length_and_composition(self, trace_generator):
        trace = trace_generator.mixed_trace(list(EVALUATION_WORKLOADS[:4]), 40)
        assert len(trace) == 40
        assert {r.workload for r in trace} <= set(EVALUATION_WORKLOADS[:4])
        assert len({r.workload for r in trace}) >= 2

    def test_weights_bias_composition(self, flstore):
        generator = RequestTraceGenerator(flstore.catalog, seed=5)
        trace = generator.mixed_trace(["inference", "clustering"], 60, weights=[0.9, 0.1])
        inference_count = sum(1 for r in trace if r.workload == "inference")
        assert inference_count > 40

    def test_weight_length_mismatch(self, trace_generator):
        with pytest.raises(ValueError):
            trace_generator.mixed_trace(["inference"], 5, weights=[0.5, 0.5])

    def test_empty_workloads_rejected(self, trace_generator):
        with pytest.raises(ValueError):
            trace_generator.mixed_trace([], 5)


class TestTraceStats:
    def test_stats_summarize_trace(self, trace_generator):
        trace = trace_generator.workload_trace("clustering", 5)
        stats = RequestTraceGenerator.stats(trace)
        assert stats.num_requests == 5
        assert stats.workloads == ("clustering",)
        assert stats.first_round == 0

    def test_stats_on_empty_trace(self):
        stats = RequestTraceGenerator.stats([])
        assert stats.num_requests == 0
        assert stats.first_round == -1

    def test_most_active_client_is_deterministic(self, flstore):
        a = RequestTraceGenerator(flstore.catalog, seed=1).most_active_client()
        b = RequestTraceGenerator(flstore.catalog, seed=2).most_active_client()
        assert a == b


class TestMixedTraceDeterminism:
    WORKLOADS = ["inference", "clustering", "debugging"]

    @staticmethod
    def _fingerprint(trace):
        return [(r.request_id, r.workload, r.round_id, r.client_id) for r in trace]

    def test_same_seed_across_two_generator_instances(self, flstore):
        first = RequestTraceGenerator(flstore.catalog, seed=9)
        second = RequestTraceGenerator(flstore.catalog, seed=9)
        trace_a = first.mixed_trace(self.WORKLOADS, 40)
        trace_b = second.mixed_trace(self.WORKLOADS, 40)
        assert self._fingerprint(trace_a) == self._fingerprint(trace_b)

    def test_different_seeds_produce_different_mixes(self, flstore):
        trace_a = RequestTraceGenerator(flstore.catalog, seed=9).mixed_trace(self.WORKLOADS, 40)
        trace_b = RequestTraceGenerator(flstore.catalog, seed=10).mixed_trace(self.WORKLOADS, 40)
        assert [r.workload for r in trace_a] != [r.workload for r in trace_b]

    def test_stats_totals_match_the_emitted_trace(self, flstore):
        generator = RequestTraceGenerator(flstore.catalog, seed=9)
        trace = generator.mixed_trace(self.WORKLOADS, 30)
        stats = RequestTraceGenerator.stats(trace)
        assert stats.num_requests == len(trace) == 30
        assert set(stats.workloads) == {r.workload for r in trace}
        assert stats.first_round == min(r.round_id for r in trace)
        assert stats.last_round == max(r.round_id for r in trace)
