"""Client population, aggregation, round records, catalog, and the FL job simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.config import FLJobConfig
from repro.fl.aggregation import coordinate_median, fedavg, trimmed_mean
from repro.fl.catalog import RoundCatalog
from repro.fl.clients import ClientPopulation
from repro.fl.keys import DataKey
from repro.fl.models import ModelUpdate, get_model_spec
from repro.fl.rounds import RoundRecord
from repro.fl.trainer import FLJobSimulator


def _update(client_id, round_id, weights, model="resnet18", samples=10.0):
    return ModelUpdate(
        client_id=client_id,
        round_id=round_id,
        model_name=model,
        weights=np.asarray(weights, dtype=float),
        size_bytes=get_model_spec(model).size_bytes,
        metrics={"num_samples": samples},
    )


class TestClientPopulation:
    def test_population_size(self, job_config):
        population = ClientPopulation(job_config, seed=1)
        assert len(population) == job_config.total_clients

    def test_deterministic_given_seed(self, job_config):
        a = ClientPopulation(job_config, seed=1)
        b = ClientPopulation(job_config, seed=1)
        assert [c.cluster_id for c in a] == [c.cluster_id for c in b]
        assert a.malicious_ids == b.malicious_ids

    def test_malicious_fraction_respected(self):
        config = FLJobConfig(total_clients=100, clients_per_round=10, total_rounds=5, malicious_fraction=0.1)
        population = ClientPopulation(config, seed=2)
        assert len(population.malicious_ids) == 10

    def test_round_selection_size_and_determinism(self, job_config):
        population = ClientPopulation(job_config, seed=1)
        first = population.select_round_participants(0)
        again = population.select_round_participants(0)
        assert len(first) == job_config.clients_per_round
        assert [c.client_id for c in first] == [c.client_id for c in again]

    def test_round_selection_varies_across_rounds(self, job_config):
        population = ClientPopulation(job_config, seed=1)
        r0 = {c.client_id for c in population.select_round_participants(0)}
        r1 = {c.client_id for c in population.select_round_participants(1)}
        assert r0 != r1

    def test_get_out_of_range(self, job_config):
        population = ClientPopulation(job_config, seed=1)
        with pytest.raises(KeyError):
            population.get(10_000)

    def test_cluster_members_cover_population(self, job_config):
        population = ClientPopulation(job_config, seed=1)
        total = sum(len(population.cluster_members(c)) for c in range(job_config.latent_clusters))
        assert total == len(population)


class TestAggregation:
    def test_fedavg_weighted_mean(self):
        updates = [
            _update(0, 0, [0.0, 0.0], samples=1.0),
            _update(1, 0, [1.0, 1.0], samples=3.0),
        ]
        aggregate = fedavg(updates)
        np.testing.assert_allclose(aggregate.weights, [0.75, 0.75])
        assert aggregate.is_aggregate
        assert aggregate.round_id == 0

    def test_fedavg_rejects_empty(self):
        with pytest.raises(ValueError):
            fedavg([])

    def test_fedavg_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            fedavg([_update(0, 0, [1.0]), _update(1, 0, [1.0, 2.0])])

    def test_fedavg_rejects_mixed_models(self):
        with pytest.raises(ValueError):
            fedavg([_update(0, 0, [1.0]), _update(1, 0, [1.0], model="vgg16")])

    def test_coordinate_median_robust_to_outlier(self):
        updates = [
            _update(0, 0, [1.0, 1.0]),
            _update(1, 0, [1.1, 0.9]),
            _update(2, 0, [100.0, -100.0]),
        ]
        robust = coordinate_median(updates)
        assert abs(robust.weights[0]) < 2.0

    def test_trimmed_mean_drops_extremes(self):
        updates = [_update(i, 0, [float(v)]) for i, v in enumerate([1, 2, 3, 4, 100])]
        trimmed = trimmed_mean(updates, trim_fraction=0.2)
        plain = fedavg(updates)
        assert trimmed.weights[0] < plain.weights[0]

    def test_trimmed_mean_validates_fraction(self):
        with pytest.raises(ValueError):
            trimmed_mean([_update(0, 0, [1.0])], trim_fraction=0.7)


class TestRoundRecord:
    def test_round_consistency_enforced(self):
        update = _update(0, 1, [1.0])
        aggregate = _update(-1, 0, [1.0])
        with pytest.raises(ValueError):
            RoundRecord(round_id=0, updates={0: update}, aggregate=aggregate)

    def test_key_views(self, rounds):
        record = rounds[0]
        keys = record.all_keys()
        assert record.aggregate_key() in keys
        assert len(record.update_keys()) == record.num_participants
        assert len(keys) == len(record.update_keys()) + len(record.metadata_keys()) + 1

    def test_objects_iterates_everything(self, rounds):
        record = rounds[0]
        objects = dict(record.objects())
        assert set(objects) == set(record.all_keys())

    def test_get_by_key(self, rounds):
        record = rounds[0]
        cid = record.participant_ids[0]
        assert record.get(DataKey.update(cid, record.round_id)).client_id == cid
        assert record.get(record.aggregate_key()).is_aggregate
        with pytest.raises(KeyError):
            record.get(DataKey.update(cid, record.round_id + 1))

    def test_total_bytes_exceeds_update_bytes(self, rounds):
        record = rounds[0]
        assert record.total_bytes > record.update_bytes


class TestRoundCatalog:
    def test_register_and_query(self, rounds):
        catalog = RoundCatalog()
        for record in rounds:
            catalog.register_round(record)
        assert len(catalog) == len(rounds)
        assert catalog.latest_round == rounds[-1].round_id
        assert catalog.participants(0) == rounds[0].participant_ids
        assert catalog.has_round(0)
        assert not catalog.has_round(999)

    def test_recent_rounds_window(self, rounds):
        catalog = RoundCatalog()
        for record in rounds:
            catalog.register_round(record)
        assert catalog.recent_rounds(3) == [r.round_id for r in rounds[-3:]]
        assert catalog.recent_rounds(3, up_to=5) == [3, 4, 5]

    def test_rounds_for_client(self, rounds):
        catalog = RoundCatalog()
        for record in rounds:
            catalog.register_round(record)
        client = rounds[0].participant_ids[0]
        participations = catalog.rounds_for_client(client)
        assert 0 in participations
        assert all(client in catalog.participants(r) for r in participations)

    def test_register_membership_without_record(self):
        catalog = RoundCatalog()
        catalog.register_membership(5, [1, 2, 3])
        assert catalog.participants(5) == [1, 2, 3]
        assert catalog.metadata_clients(5) == [1, 2, 3]

    def test_empty_catalog(self):
        catalog = RoundCatalog()
        assert catalog.latest_round == -1
        assert catalog.participants(0) == []


class TestFLJobSimulator:
    def test_round_structure(self, small_config):
        simulator = FLJobSimulator(small_config)
        record = simulator.generate_round()
        assert record.num_participants == small_config.job.clients_per_round
        assert record.aggregate.is_aggregate
        assert set(record.metadata) == set(record.updates)

    def test_rounds_must_be_generated_in_order(self, small_config):
        simulator = FLJobSimulator(small_config)
        simulator.generate_round()
        with pytest.raises(ConfigurationError):
            simulator.generate_round(round_id=5)

    def test_deterministic_across_instances(self, small_config):
        a = FLJobSimulator(small_config).generate_round()
        b = FLJobSimulator(small_config).generate_round()
        assert a.participant_ids == b.participant_ids
        np.testing.assert_allclose(a.aggregate.weights, b.aggregate.weights)

    def test_update_sizes_match_model_spec(self, small_config, rounds):
        spec = get_model_spec(small_config.job.model_name)
        for update in rounds[0].updates.values():
            assert update.size_bytes == spec.size_bytes

    def test_accuracy_improves_over_training(self, small_config):
        simulator = FLJobSimulator(small_config.with_job(total_rounds=20))
        simulator.run_rounds(20)
        history = simulator.state.accuracy_history
        assert np.mean(history[-5:]) > np.mean(history[:5])

    def test_malicious_updates_are_outliers(self, small_config):
        config = small_config.with_job(malicious_fraction=0.2, total_clients=20, clients_per_round=10)
        simulator = FLJobSimulator(config)
        malicious_ids = simulator.population.malicious_ids
        record = simulator.generate_round()
        norms = {cid: update.l2_norm() for cid, update in record.updates.items()}
        present_malicious = [cid for cid in record.updates if cid in malicious_ids]
        present_honest = [cid for cid in record.updates if cid not in malicious_ids]
        if present_malicious and present_honest:
            assert max(norms[c] for c in present_malicious) > np.median(
                [norms[c] for c in present_honest]
            )

    def test_rounds_iterator_respects_count(self, small_config):
        simulator = FLJobSimulator(small_config)
        generated = list(simulator.rounds(3))
        assert [r.round_id for r in generated] == [0, 1, 2]

    def test_run_rounds_rejects_negative(self, small_config):
        with pytest.raises(ValueError):
            FLJobSimulator(small_config).run_rounds(-1)
