"""Shared fixtures for the FLStore reproduction test suite."""

from __future__ import annotations

import pytest

from repro.baselines.cache_agg import CacheAggregator
from repro.baselines.objstore_agg import ObjStoreAggregator
from repro.config import FLJobConfig, PricingConfig, SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.fl.trainer import FLJobSimulator
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkTopology
from repro.traces.generator import RequestTraceGenerator


@pytest.fixture(scope="session")
def small_config() -> SimulationConfig:
    """A laptop-scale configuration shared by most tests."""
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="session")
def job_config(small_config) -> FLJobConfig:
    return small_config.job


@pytest.fixture(scope="session")
def pricing() -> PricingConfig:
    return PricingConfig()


@pytest.fixture(scope="session")
def topology(small_config) -> NetworkTopology:
    return NetworkTopology(small_config.network)


@pytest.fixture(scope="session")
def cost_model(pricing) -> TransferCostModel:
    return TransferCostModel(pricing)


@pytest.fixture(scope="session")
def simulator(small_config) -> FLJobSimulator:
    """A simulator whose first ten rounds are shared (read-only) across tests."""
    return FLJobSimulator(small_config)


@pytest.fixture(scope="session")
def rounds(small_config):
    """Ten rounds of FL metadata produced by a dedicated simulator instance."""
    return FLJobSimulator(small_config).run_rounds(10)


@pytest.fixture()
def fresh_rounds(small_config):
    """Rounds from a brand-new simulator (for tests that mutate records)."""
    return FLJobSimulator(small_config).run_rounds(5)


@pytest.fixture()
def flstore(small_config, rounds):
    """A tailored-policy FLStore with ten rounds ingested."""
    system = build_default_flstore(small_config)
    for record in rounds:
        system.ingest_round(record)
    return system


@pytest.fixture()
def objstore_agg(small_config, rounds):
    """An ObjStore-Agg baseline with ten rounds ingested."""
    system = ObjStoreAggregator(small_config)
    for record in rounds:
        system.ingest_round(record)
    return system


@pytest.fixture()
def cache_agg(small_config, rounds):
    """A Cache-Agg baseline with ten rounds ingested."""
    system = CacheAggregator(small_config)
    for record in rounds:
        system.ingest_round(record)
    return system


@pytest.fixture()
def trace_generator(flstore):
    """A trace generator bound to the ingested FLStore catalog."""
    return RequestTraceGenerator(flstore.catalog, seed=3)
