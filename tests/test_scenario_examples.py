"""The bundled example specs can never rot.

Every file under ``examples/scenarios/`` must (1) parse and validate, (2)
stay equal to its registered scenario (the files are generated from the
registry — drift in either direction fails here), and (3) actually run end
to end at smoke scale with conservation asserted.  CI additionally runs the
full ``repro.cli run-scenario --spec <file> --smoke`` path on every file.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, get_scenario, list_scenarios, run, smoke_spec

SCENARIO_DIR = Path(__file__).parent.parent / "examples" / "scenarios"
EXAMPLE_FILES = sorted(SCENARIO_DIR.iterdir()) if SCENARIO_DIR.exists() else []


def test_example_directory_is_populated():
    assert EXAMPLE_FILES, f"no example specs found under {SCENARIO_DIR}"
    assert {path.suffix for path in EXAMPLE_FILES} == {".json", ".toml"}


def test_every_registered_scenario_ships_an_example_file():
    stems = {path.stem for path in EXAMPLE_FILES}
    for name in list_scenarios():
        assert name.replace("-", "_") in stems, f"scenario {name!r} has no example file"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_file_matches_registered_scenario(path):
    spec = ScenarioSpec.load(path)
    assert spec == get_scenario(spec.name), (
        f"{path.name} drifted from the registered {spec.name!r} scenario; "
        "regenerate it with spec.save() or update the registry"
    )


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_spec_smoke_runs_and_conserves(path):
    spec = smoke_spec(ScenarioSpec.load(path), num_rounds=3, num_requests=8)
    expected = (
        sum(tenant.num_requests for tenant in spec.tenants)
        if spec.tenants
        else spec.workload.num_requests
    )
    report = run(spec)  # run() raises if conservation is violated
    assert report.conserved is True
    assert report.load.submitted == expected
    row = report.row()
    assert row["served"] + row["shed"] + row["degraded"] == expected
    for tenant_row in report.tenants or []:
        assert (
            tenant_row["served"]
            + tenant_row["requeued"]
            + tenant_row["degraded"]
            + tenant_row["shed"]
            == tenant_row["offered"]
        )
