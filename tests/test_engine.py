"""The discrete-event engine: kernel, queues, and serving equivalence."""

from __future__ import annotations

import pytest

from repro.common.errors import CapacityError
from repro.config import SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.engine import EngineFLStore, EventLoop, SimTask, Timeout
from repro.fl.trainer import FLJobSimulator
from repro.serverless.faults import ZipfianFaultInjector
from repro.serverless.function import RequestQueue, ServerlessFunction
from repro.serverless.platform import ServerlessPlatform
from repro.traces.generator import RequestTraceGenerator
from repro.workloads.registry import list_workloads


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, lambda: fired.append("c"))
        loop.schedule_at(1.0, lambda: fired.append("a"))
        loop.schedule_at(2.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_same_timestamp_ties_break_by_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for label in ("first", "second", "third"):
            loop.schedule_at(5.0, lambda label=label: fired.append(label))
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_cannot_schedule_into_the_past(self):
        loop = EventLoop()
        loop.schedule_at(2.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(1.0, lambda: None)

    def test_run_until_stops_the_clock_exactly(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(10.0, lambda: fired.append(10))
        loop.run(until=5.0)
        assert fired == [1]
        assert loop.now == 5.0
        assert loop.pending() == 1

    def test_process_timeout_and_return_value(self):
        loop = EventLoop()

        def worker():
            yield Timeout(2.0)
            yield Timeout(0.5)
            return "done"

        task = loop.process(worker())
        loop.run()
        assert task.done and task.result == "done"
        assert loop.now == 2.5

    def test_process_waits_on_another_task(self):
        loop = EventLoop()
        trail = []

        def producer():
            yield Timeout(1.0)
            return 42

        def consumer(upstream):
            value = yield upstream
            trail.append((loop.now, value))
            return value * 2

        upstream = loop.process(producer())
        downstream = loop.process(consumer(upstream))
        loop.run()
        assert trail == [(1.0, 42)]
        assert downstream.result == 84

    def test_waiting_on_done_task_resumes_via_heap(self):
        loop = EventLoop()
        done = SimTask(loop)
        done.resolve("ready")

        def waiter():
            value = yield done
            return value

        task = loop.process(waiter())
        assert not task.done  # resumption is deferred to the event heap
        loop.run()
        assert task.result == "ready"

    def test_yielding_garbage_raises(self):
        loop = EventLoop()

        def bad():
            yield "nope"

        with pytest.raises(TypeError):
            loop.process(bad())

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_task_double_resolve_rejected(self):
        loop = EventLoop()
        task = SimTask(loop)
        task.resolve(1)
        with pytest.raises(RuntimeError):
            task.resolve(2)
        assert task.result == 1


# ---------------------------------------------------------------------------
# Queues and concurrency slots
# ---------------------------------------------------------------------------


class TestRequestQueue:
    def test_fifo_pops_in_arrival_order(self):
        queue = RequestQueue("fifo")
        for token in ("a", "b", "c"):
            queue.push(token, priority=5.0)  # priority ignored under FIFO
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_priority_pops_lowest_first_and_ties_fifo(self):
        queue = RequestQueue("priority")
        queue.push("late-low", priority=1.0)
        queue.push("urgent", priority=0.0)
        queue.push("also-urgent", priority=0.0)
        assert [queue.pop() for _ in range(3)] == ["urgent", "also-urgent", "late-low"]

    def test_drain_returns_pop_order(self):
        queue = RequestQueue("priority")
        queue.push("b", priority=2.0)
        queue.push("a", priority=1.0)
        assert queue.drain() == ["a", "b"]
        assert len(queue) == 0

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue("lifo")


class TestConcurrencySlots:
    def test_function_slot_accounting(self):
        function = ServerlessFunction("fn-0", concurrency_limit=2)
        assert function.has_execution_slot
        function.begin_execution()
        function.begin_execution()
        assert not function.has_execution_slot
        with pytest.raises(CapacityError):
            function.begin_execution()
        function.end_execution()
        assert function.has_execution_slot

    def test_reclaim_clears_active_executions(self):
        function = ServerlessFunction("fn-0", concurrency_limit=1)
        function.begin_execution()
        function.reclaim()
        assert function.active_executions == 0
        function.end_execution()  # past zero is a no-op
        assert function.active_executions == 0

    def test_platform_slot_handoff_to_waiter(self):
        platform = ServerlessPlatform()
        function, _ = platform.spawn_function()
        fid = function.function_id
        assert platform.try_acquire_slot(fid)
        assert not platform.try_acquire_slot(fid)  # concurrency default is 1
        platform.enqueue_waiter(fid, "waiter-1")
        platform.enqueue_waiter(fid, "waiter-2")
        assert platform.queue_depth(fid) == 2
        assert platform.release_slot(fid) == "waiter-1"  # slot handed over
        assert function.active_executions == 1
        assert platform.queue_depth(fid) == 1
        assert platform.release_slot(fid) == "waiter-2"
        assert platform.release_slot(fid) is None
        assert platform.total_queue_depth() == 0

    def test_drain_waiters(self):
        platform = ServerlessPlatform()
        function, _ = platform.spawn_function()
        platform.enqueue_waiter(function.function_id, "x")
        platform.enqueue_waiter(function.function_id, "y")
        assert platform.drain_waiters(function.function_id) == ["x", "y"]
        assert platform.queue_depth(function.function_id) == 0


# ---------------------------------------------------------------------------
# EngineFLStore
# ---------------------------------------------------------------------------


def _ingested_flstore(config, rounds):
    system = build_default_flstore(config)
    for record in rounds:
        system.ingest_round(record)
    return system


@pytest.fixture(scope="module")
def engine_config():
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="module")
def engine_rounds(engine_config):
    return FLJobSimulator(engine_config).run_rounds(8)


class TestClosedLoopEquivalence:
    def test_every_workload_is_byte_identical_to_direct_serve(self, engine_config, engine_rounds):
        """The acceptance invariant: sequential arrivals through the engine
        reproduce the direct FLStore.serve path exactly, for every registered
        workload, including the RequestRecord rows."""
        direct = _ingested_flstore(engine_config, engine_rounds)
        engine = EngineFLStore(_ingested_flstore(engine_config, engine_rounds))
        gen_direct = RequestTraceGenerator(direct.catalog, seed=3)
        gen_engine = RequestTraceGenerator(engine.catalog, seed=3)

        for workload_name in list_workloads():
            trace_direct = gen_direct.workload_trace(workload_name, 4)
            trace_engine = gen_engine.workload_trace(workload_name, 4)
            direct_results = [direct.serve(request) for request in trace_direct]
            engine_results = engine.run_closed_loop(trace_engine)
            for expected, actual in zip(direct_results, engine_results):
                assert actual.latency == expected.latency, workload_name
                assert actual.cost == expected.cost, workload_name
                assert actual.cache_hits == expected.cache_hits, workload_name
                assert actual.cache_misses == expected.cache_misses, workload_name
                assert actual.failovers == expected.failovers, workload_name
                assert actual.prefetched_keys == expected.prefetched_keys, workload_name
                assert actual.evicted_keys == expected.evicted_keys, workload_name
                assert actual.served_by == expected.served_by, workload_name
                assert actual.execution_function == expected.execution_function, workload_name
                expected_row = expected.to_record("s", "m", 0)
                actual_row = actual.to_record("s", "m", 0)
                assert actual_row == expected_row, workload_name
        # Both sides advanced their virtual clocks identically.
        assert engine.flstore.clock.now() == direct.clock.now()
        assert engine.loop.now == direct.clock.now()

    def test_engine_rejects_flstore_with_its_own_injector(self, engine_config):
        flstore = build_default_flstore(
            engine_config, fault_injector=ZipfianFaultInjector(fault_rate=0.5)
        )
        with pytest.raises(ValueError):
            EngineFLStore(flstore)


class TestOpenLoop:
    def _engine(self, engine_config, engine_rounds):
        return EngineFLStore(_ingested_flstore(engine_config, engine_rounds))

    def test_simultaneous_burst_queues_on_the_execution_function(
        self, engine_config, engine_rounds
    ):
        engine = self._engine(engine_config, engine_rounds)
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.workload_trace("inference", 6)
        report = engine.run_open_loop(trace, [0.0] * len(trace), label="burst")
        assert report.completed == 6
        # One request executes immediately, the rest wait: sojourns strictly
        # exceed service for the queued ones and the queue was observed.
        assert report.max_queue_depth >= 1
        assert report.mean_wait_seconds > 0
        waits = sorted(outcome.wait_seconds for outcome in report.outcomes)
        assert waits[0] == 0.0
        assert waits[-1] > 0.0
        assert report.p99_sojourn_seconds >= report.p50_sojourn_seconds

    def test_open_loop_is_deterministic(self, engine_config, engine_rounds):
        def run_once():
            engine = self._engine(engine_config, engine_rounds)
            generator = RequestTraceGenerator(engine.catalog, seed=3)
            trace = generator.mixed_trace(["inference", "clustering"], 30)
            from repro.traces.arrivals import PoissonArrivals

            arrivals = PoissonArrivals(rate_rps=1.0, seed=5).times(len(trace))
            report = engine.run_open_loop(trace, arrivals, label="poisson", keepalive=True)
            return report.row(), [
                (o.request.request_id, o.arrived_at, o.started_at, o.completed_at)
                for o in report.outcomes
            ]

        first_row, first_outcomes = run_once()
        second_row, second_outcomes = run_once()
        assert first_row == second_row
        assert first_outcomes == second_outcomes

    def test_request_records_carry_queue_wait(self, engine_config, engine_rounds):
        engine = self._engine(engine_config, engine_rounds)
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.workload_trace("inference", 4)
        report = engine.run_open_loop(trace, [0.0] * len(trace), label="burst")
        records = report.to_records(system="engine-flstore", model_name="resnet18")
        assert len(records) == 4
        total_wait = sum(outcome.wait_seconds for outcome in report.outcomes)
        total_queueing = sum(r.latency.queueing_seconds for r in records)
        analytic_queueing = sum(o.result.latency.queueing_seconds for o in report.outcomes)
        assert total_queueing == pytest.approx(analytic_queueing + total_wait)
        assert {r.system for r in records} == {"engine-flstore"}

    def test_open_loop_runs_compose_on_one_engine(self, engine_config, engine_rounds):
        engine = self._engine(engine_config, engine_rounds)
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        first = engine.run_open_loop(
            generator.workload_trace("inference", 4), [0.0] * 4, label="one"
        )
        resume_at = engine.loop.now
        # Arrival times are relative to each run's start, so a second sweep
        # point on the same engine starts cleanly after the first.
        second = engine.run_open_loop(
            generator.workload_trace("clustering", 3), [0.0, 0.1, 0.2], label="two"
        )
        assert first.completed == 4
        assert second.completed == 3
        assert all(outcome.arrived_at >= resume_at for outcome in second.outcomes)
        # Per-run counters: the burst of run one must not leak into run two's
        # queue-depth profile.
        assert first.max_queue_depth >= 1
        assert second.max_queue_depth <= first.max_queue_depth

    def test_mismatched_lengths_rejected(self, engine_config, engine_rounds):
        engine = self._engine(engine_config, engine_rounds)
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.workload_trace("inference", 3)
        with pytest.raises(ValueError):
            engine.run_open_loop(trace, [0.0, 1.0])

    def test_keepalive_fires_as_scheduled_events(self, engine_config, engine_rounds):
        engine = self._engine(engine_config, engine_rounds)
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering"], 10)
        # Spread arrivals far beyond the keep-alive interval so pings fire.
        interval = engine.config.serverless.keepalive_interval_seconds
        arrivals = [i * interval for i in range(len(trace))]
        report = engine.run_open_loop(trace, arrivals, label="slow", keepalive=True)
        assert report.completed == 10
        assert report.keepalive_pings > 0

    def test_scheduled_reclamations_drain_waiters(self, engine_config, engine_rounds):
        injector = ZipfianFaultInjector(fault_rate=1.0, seed=13)
        engine = EngineFLStore(
            _ingested_flstore(engine_config, engine_rounds),
            fault_injector=injector,
            reclamation_interval_seconds=0.5,
        )
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering"], 20)
        arrivals = [0.1 * i for i in range(len(trace))]
        report = engine.run_open_loop(trace, arrivals, label="faulty")
        # Every request completes even though functions are being reclaimed
        # underneath the queues.
        assert report.completed == 20
        assert engine.reclamations > 0
        assert engine.platform.total_queue_depth() == 0

    def test_drained_waiters_are_recorded_as_requeued(self, engine_config, engine_rounds):
        """Satellite fix: waiters drained by a reclamation must show up in the
        accounting (disposition, report counters, platform stats) instead of
        silently completing as if they had been served normally."""
        injector = ZipfianFaultInjector(fault_rate=1.0, seed=13)
        engine = EngineFLStore(
            _ingested_flstore(engine_config, engine_rounds),
            fault_injector=injector,
            reclamation_interval_seconds=0.5,
        )
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering"], 20)
        arrivals = [0.1 * i for i in range(len(trace))]
        report = engine.run_open_loop(trace, arrivals, label="faulty")
        requeued = [o for o in report.outcomes if o.disposition == "requeued"]
        assert requeued, "the full-rate injector must drain at least one waiter"
        assert report.requeued == len(requeued)
        # Requeued requests still completed with a response (they are part
        # of served goodput), and conservation covers every submission.
        assert report.served + report.degraded + report.shed == report.submitted
        assert engine.requeued_requests == report.requeued
        assert engine.platform.stats.requests_requeued == report.requeued
        # Every requeued row is ServeResult-compatible: it converts into a
        # RequestRecord like any served request.
        records = report.to_records(system="engine-flstore", model_name="m")
        assert len(records) == report.submitted


class TestPriorityServing:
    """Satellite: the ``priority`` discipline under overload must separate
    latency-critical P1 traffic from batch P4 traffic."""

    def _run(self, engine_config, engine_rounds, discipline):
        from dataclasses import replace

        import numpy as np

        from repro.traces.arrivals import BurstyArrivals
        from repro.workloads.registry import workload_priority

        config = replace(
            engine_config,
            serverless=replace(engine_config.serverless, queue_discipline=discipline),
        )
        engine = EngineFLStore(_ingested_flstore(config, engine_rounds))
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        # inference is P1 (priority 1.0), scheduling_perf is P4 (priority 4.0).
        trace = generator.mixed_trace(["inference", "scheduling_perf"], 40)
        priorities = [workload_priority(request.workload) for request in trace]
        arrivals = BurstyArrivals(
            rate_rps=2.0, seed=5, mean_on_seconds=2.0, mean_off_seconds=8.0
        ).times(len(trace))
        report = engine.run_open_loop(trace, arrivals, priorities=priorities, label="bursty")
        assert report.completed == 40
        means = {}
        for workload in ("inference", "scheduling_perf"):
            sojourns = [
                o.sojourn_seconds for o in report.outcomes if o.request.workload == workload
            ]
            means[workload] = float(np.mean(sojourns))
        return means, [
            (o.request.request_id, o.arrived_at, o.started_at, o.completed_at)
            for o in report.outcomes
        ]

    def test_priority_separates_p1_from_p4_under_overload(self, engine_config, engine_rounds):
        fifo_means, _ = self._run(engine_config, engine_rounds, "fifo")
        priority_means, _ = self._run(engine_config, engine_rounds, "priority")
        # Under FIFO the two classes see statistically similar sojourns;
        # under priority, P1 must be strictly faster and P4 strictly slower
        # than their FIFO baselines (work-conserving reshuffling).
        assert priority_means["inference"] < fifo_means["inference"] * 0.8
        assert priority_means["scheduling_perf"] > fifo_means["scheduling_perf"] * 1.2
        assert priority_means["inference"] < priority_means["scheduling_perf"] / 2

    def test_priority_overload_run_is_deterministic(self, engine_config, engine_rounds):
        first = self._run(engine_config, engine_rounds, "priority")
        second = self._run(engine_config, engine_rounds, "priority")
        assert first == second
