"""Model zoo, model updates, metadata, and keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.fl.keys import DataKey, DataKind
from repro.fl.metadata import ClientRoundMetadata, HyperParameters, ResourceProfile
from repro.fl.models import (
    EVALUATION_MODELS,
    MODEL_ZOO,
    ModelSpec,
    ModelUpdate,
    average_model_size_mb,
    get_model_spec,
)


def _update(client_id=0, round_id=0, dim=8, value=1.0, model="resnet18"):
    return ModelUpdate(
        client_id=client_id,
        round_id=round_id,
        model_name=model,
        weights=np.full(dim, value, dtype=float),
        size_bytes=get_model_spec(model).size_bytes,
        metrics={"num_samples": 10},
    )


class TestModelZoo:
    def test_has_23_models(self):
        assert len(MODEL_ZOO) == 23

    def test_average_size_close_to_paper(self):
        # The paper reports an average of ~161 MB for the same catalogue.
        assert 120 <= average_model_size_mb() <= 200

    def test_every_model_fits_in_a_lambda_function(self):
        for spec in MODEL_ZOO.values():
            assert spec.size_mb < 10 * 1024

    def test_evaluation_models_are_in_zoo(self):
        for name in EVALUATION_MODELS:
            assert name in MODEL_ZOO

    def test_get_model_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_model_spec("gpt-17")

    def test_size_bytes_consistent_with_mb(self):
        spec = get_model_spec("resnet18")
        assert spec.size_bytes == pytest.approx(spec.size_mb * 1024 * 1024, rel=1e-6)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ModelSpec(name="bad", size_mb=0.0, params_millions=1.0)


class TestModelUpdate:
    def test_requires_1d_weights(self):
        with pytest.raises(ConfigurationError):
            ModelUpdate(0, 0, "resnet18", np.zeros((2, 2)), size_bytes=10)

    def test_requires_positive_size(self):
        with pytest.raises(ConfigurationError):
            ModelUpdate(0, 0, "resnet18", np.zeros(4), size_bytes=0)

    def test_aggregate_flag(self):
        assert _update(client_id=-1).is_aggregate
        assert not _update(client_id=3).is_aggregate

    def test_norm_and_distance(self):
        a = _update(value=0.0)
        b = _update(value=1.0)
        assert a.l2_norm() == 0.0
        assert b.distance_to(a) == pytest.approx(np.sqrt(8.0))

    def test_cosine_similarity_bounds(self):
        a = _update(value=1.0)
        b = _update(value=2.0)
        assert a.cosine_similarity(b) == pytest.approx(1.0)
        zero = _update(value=0.0)
        assert a.cosine_similarity(zero) == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            _update(dim=8).distance_to(_update(dim=4))
        with pytest.raises(ValueError):
            _update(dim=8).cosine_similarity(_update(dim=4))


class TestMetadata:
    def test_hyperparameters_validation(self):
        with pytest.raises(ConfigurationError):
            HyperParameters(learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            HyperParameters(local_epochs=0)

    def test_hyperparameters_as_dict(self):
        d = HyperParameters().as_dict()
        assert d["optimizer"] == "sgd"
        assert "learning_rate" in d

    def test_resource_profile_validation(self):
        with pytest.raises(ConfigurationError):
            ResourceProfile(cpu_ghz=0.0)
        with pytest.raises(ConfigurationError):
            ResourceProfile(availability=2.0)

    def test_capability_score_monotone_in_cpu(self):
        slow = ResourceProfile(cpu_ghz=1.0)
        fast = ResourceProfile(cpu_ghz=3.0)
        assert fast.capability_score() > slow.capability_score()

    def test_client_round_metadata(self):
        meta = ClientRoundMetadata(
            client_id=1,
            round_id=2,
            hyperparameters=HyperParameters(),
            resources=ResourceProfile(),
            local_accuracy=0.8,
            train_seconds=30.0,
            upload_seconds=5.0,
        )
        assert meta.round_duration_seconds == pytest.approx(35.0)
        assert meta.size_bytes > 0

    def test_metadata_validation(self):
        with pytest.raises(ConfigurationError):
            ClientRoundMetadata(
                client_id=1,
                round_id=2,
                hyperparameters=HyperParameters(),
                resources=ResourceProfile(),
                local_accuracy=1.5,
            )


class TestDataKey:
    def test_factories(self):
        update = DataKey.update(3, 7)
        assert update.kind is DataKind.CLIENT_UPDATE and update.is_update
        aggregate = DataKey.aggregate(7)
        assert aggregate.is_aggregate and aggregate.client_id == -1
        metadata = DataKey.metadata(3, 7)
        assert metadata.is_metadata

    def test_keys_are_hashable_and_comparable(self):
        keys = {DataKey.update(1, 1), DataKey.update(1, 1), DataKey.update(2, 1)}
        assert len(keys) == 2
        assert DataKey.update(1, 0) < DataKey.update(1, 1) or DataKey.update(1, 1) < DataKey.update(1, 0)

    def test_string_representation(self):
        assert "aggregate" in str(DataKey.aggregate(4))
        assert "c3" in str(DataKey.update(3, 4))
