"""Network links, topology, and transfer cost model."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.config import NetworkConfig, PricingConfig
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkLink, NetworkTopology


class TestNetworkLink:
    def test_transfer_time_scales_with_size(self):
        link = NetworkLink("test", rtt_seconds=0.01, bandwidth_mb_per_s=10.0)
        small = link.transfer_seconds(1 * MB)
        large = link.transfer_seconds(100 * MB)
        assert large > small
        assert large == pytest.approx(0.01 + 10.0, rel=1e-3)

    def test_zero_bytes_still_pays_rtt(self):
        link = NetworkLink("test", rtt_seconds=0.05, bandwidth_mb_per_s=10.0)
        assert link.transfer_seconds(0) == pytest.approx(0.05)

    def test_negative_payload_rejected(self):
        link = NetworkLink("test", 0.01, 10.0)
        with pytest.raises(ValueError):
            link.transfer_seconds(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkLink("bad", 0.01, 0.0)

    def test_round_trip_includes_both_payloads(self):
        link = NetworkLink("test", 0.01, 10.0)
        assert link.round_trip_seconds(10 * MB, 10 * MB) == pytest.approx(0.01 + 2.0)


class TestNetworkTopology:
    def test_has_all_expected_links(self, topology):
        assert set(topology.link_names()) == {"cache", "client", "objstore", "serverless"}

    def test_cache_is_faster_than_objstore(self, topology):
        payload = 100 * MB
        assert topology.cache.transfer_seconds(payload) < topology.objstore.transfer_seconds(payload)

    def test_link_lookup_by_name(self, topology):
        assert topology.link("objstore") is topology.objstore

    def test_unknown_link_raises(self, topology):
        with pytest.raises(KeyError):
            topology.link("satellite")

    def test_default_config_used_when_none(self):
        assert NetworkTopology().objstore.bandwidth_mb_per_s == NetworkConfig().objstore_bandwidth_mb_per_s


class TestTransferCostModel:
    def test_get_charges_request_and_transfer(self):
        pricing = PricingConfig(objstore_transfer_cost_per_gb=0.09)
        model = TransferCostModel(pricing)
        cost = model.objstore_get_cost(1 * GB)
        assert cost.request_dollars == pytest.approx(pricing.objstore_get_request_cost)
        assert cost.transfer_dollars == pytest.approx(0.09)

    def test_put_is_request_only(self, cost_model, pricing):
        cost = cost_model.objstore_put_cost(5 * GB)
        assert cost.transfer_dollars == 0.0
        assert cost.request_dollars == pytest.approx(pricing.objstore_put_request_cost)

    def test_storage_cost_scales_with_duration(self, cost_model):
        short = cost_model.objstore_storage_cost(100 * GB, duration_hours=1.0).storage_dollars
        long = cost_model.objstore_storage_cost(100 * GB, duration_hours=10.0).storage_dollars
        assert long == pytest.approx(10 * short)

    def test_cache_node_cost(self, cost_model, pricing):
        cost = cost_model.cache_node_cost(3, duration_hours=2.0)
        assert cost.provisioned_dollars == pytest.approx(3 * 2.0 * pricing.cache_node_cost_per_hour)

    def test_aggregator_cost(self, cost_model, pricing):
        assert cost_model.aggregator_cost(50.0).provisioned_dollars == pytest.approx(
            50.0 * pricing.aggregator_cost_per_hour
        )

    def test_lambda_execution_cost(self, cost_model, pricing):
        cost = cost_model.lambda_execution_cost(memory_gb=4.0, duration_seconds=10.0)
        assert cost.compute_dollars == pytest.approx(40.0 * pricing.lambda_cost_per_gb_second)
        assert cost.request_dollars == pytest.approx(pricing.lambda_cost_per_million_requests / 1e6)

    def test_lambda_keepalive_cost_scales_with_instances(self, cost_model):
        one = cost_model.lambda_keepalive_cost(1, 720.0).provisioned_dollars
        five = cost_model.lambda_keepalive_cost(5, 720.0).provisioned_dollars
        assert five == pytest.approx(5 * one)
