"""The sharded serving tier: routing, the front door, and admission control."""

from __future__ import annotations

import pytest

from repro.common.errors import CapacityError
from repro.config import SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.engine import EngineFLStore, ShardedEngineFLStore, merge_depth_samples
from repro.routing import (
    ROUTER_KINDS,
    ConsistentHashRouter,
    JoinShortestQueueRouter,
    ModuloRouter,
    make_router,
    request_routing_key,
    stable_hash_u64,
)
from repro.serverless.function import RequestQueue
from repro.traces.generator import RequestTraceGenerator
from repro.fl.trainer import FLJobSimulator
from repro.workloads.base import WorkloadRequest
from repro.workloads.registry import list_workloads


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


class TestRouting:
    def test_stable_hash_is_deterministic_and_64_bit(self):
        assert stable_hash_u64("abc") == stable_hash_u64("abc")
        assert stable_hash_u64("abc") != stable_hash_u64("abd")
        assert 0 <= stable_hash_u64("anything") < 2**64

    def test_request_routing_key_follows_data_affinity(self):
        a = WorkloadRequest(request_id="r1", workload="inference", round_id=3)
        b = WorkloadRequest(request_id="r2", workload="clustering", round_id=3)
        c = WorkloadRequest(request_id="r3", workload="inference", round_id=4)
        # Same data coordinates -> same key regardless of workload/request id.
        assert request_routing_key(a) == request_routing_key(b)
        assert request_routing_key(a) != request_routing_key(c)

    @pytest.mark.parametrize("kind", ROUTER_KINDS)
    def test_routers_are_deterministic_and_in_range(self, kind):
        router = make_router(kind, 4)
        targets = [router.route(stable_hash_u64(f"key-{i}")) for i in range(200)]
        assert targets == [router.route(stable_hash_u64(f"key-{i}")) for i in range(200)]
        assert set(targets) <= set(range(4))
        # Every shard receives some traffic for a spread key population.
        assert len(set(targets)) == 4

    def test_modulo_router_is_plain_modulo(self):
        router = ModuloRouter(3)
        assert [router.route(k) for k in (0, 1, 2, 3, 7)] == [0, 1, 2, 0, 1]

    def test_consistent_hash_minimises_remapping_on_resize(self):
        keys = [stable_hash_u64(f"key-{i}") for i in range(500)]
        four = ConsistentHashRouter(4)
        five = ConsistentHashRouter(5)
        moved = sum(1 for key in keys if four.route(key) != five.route(key))
        # Modulo would remap ~80% of keys; the ring should move a small
        # fraction (~1/5 in expectation).
        assert moved / len(keys) < 0.5

    def test_invalid_router_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_router("nope", 2)
        with pytest.raises(ValueError):
            ModuloRouter(0)
        with pytest.raises(ValueError):
            ConsistentHashRouter(2, vnodes=0)

    def test_merge_depth_samples_sums_across_shards(self):
        merged = merge_depth_samples(
            [
                [(1.0, 1), (3.0, 0)],
                [(2.0, 2), (4.0, 1)],
            ]
        )
        assert merged == [(1.0, 1), (2.0, 3), (3.0, 2), (4.0, 1)]
        # Single shard: identity.
        assert merge_depth_samples([[(1.0, 5)]]) == [(1.0, 5)]


# ---------------------------------------------------------------------------
# Load-aware routing (join-shortest-queue over the affinity candidates)
# ---------------------------------------------------------------------------


class TestJoinShortestQueueRouter:
    def test_candidates_are_stable_distinct_and_affinity_ordered(self):
        jsq = make_router("jsq", 4)
        ring = ConsistentHashRouter(4)
        for i in range(100):
            key = stable_hash_u64(f"key-{i}")
            candidates = jsq.candidates(key)
            assert len(candidates) == 2 and len(set(candidates)) == 2
            assert candidates == jsq.candidates(key)
            # The primary candidate is the ring owner: affinity comes first.
            assert candidates[0] == ring.route(key)

    def test_unbound_probe_degrades_to_pure_hashing(self):
        jsq, ring = make_router("jsq", 4), ConsistentHashRouter(4)
        keys = [stable_hash_u64(f"k{i}") for i in range(200)]
        assert [jsq.route(k) for k in keys] == [ring.route(k) for k in keys]

    def test_probe_steers_to_least_loaded_candidate_with_affinity_ties(self):
        jsq = make_router("jsq", 4)
        key = stable_hash_u64("hot")
        primary, secondary = jsq.candidates(key)
        loads = {primary: 0, secondary: 0}
        jsq.bind_load_probe(lambda slot: loads.get(slot, 0))
        assert jsq.route(key) == primary  # tie -> affinity order
        loads[primary] = 5
        assert jsq.route(key) == secondary
        loads[secondary] = 9
        assert jsq.route(key) == primary

    def test_fanout_validated_and_capped_by_shard_count(self):
        with pytest.raises(ValueError):
            make_router("jsq", 2, fanout=0)
        assert len(make_router("jsq", 2, fanout=8).candidates(123)) == 2

    def test_resized_preserves_parameters_but_not_the_probe(self):
        jsq = make_router("jsq", 4, vnodes=16, fanout=3)
        jsq.bind_load_probe(lambda slot: 0)
        resized = jsq.resized(5)
        assert isinstance(resized, JoinShortestQueueRouter)
        assert (resized.num_shards, resized.vnodes, resized.fanout) == (5, 16, 3)
        assert resized._load_probe is None


# ---------------------------------------------------------------------------
# Bounded queues (serverless layer)
# ---------------------------------------------------------------------------


class TestBoundedQueue:
    def test_bounded_queue_reports_full_and_rejects_overflow(self):
        queue = RequestQueue("fifo", capacity=2)
        queue.push("a")
        queue.push("b")
        assert queue.full
        with pytest.raises(CapacityError):
            queue.push("c")
        assert queue.pop() == "a"
        assert not queue.full

    def test_unbounded_queue_never_full(self):
        queue = RequestQueue("fifo")
        for token in range(100):
            queue.push(token)
        assert not queue.full

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue("fifo", capacity=-1)

    def test_platform_queue_capacity_and_fullness(self):
        from repro.config import ServerlessConfig
        from repro.serverless.platform import ServerlessPlatform

        platform = ServerlessPlatform(config=ServerlessConfig(max_queue_depth=1))
        function, _ = platform.spawn_function()
        fid = function.function_id
        assert not platform.queue_is_full(fid)
        platform.enqueue_waiter(fid, "a")
        assert platform.queue_is_full(fid)
        # Raising the capacity re-bounds the existing queue too.
        platform.set_queue_capacity(2)
        assert not platform.queue_is_full(fid)
        platform.enqueue_waiter(fid, "b")
        assert platform.queue_is_full(fid)
        with pytest.raises(ValueError):
            platform.set_queue_capacity(-1)


# ---------------------------------------------------------------------------
# The front door
# ---------------------------------------------------------------------------


def _ingested_flstore(config, rounds):
    system = build_default_flstore(config)
    for record in rounds:
        system.ingest_round(record)
    return system


@pytest.fixture(scope="module")
def shard_config():
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="module")
def shard_rounds(shard_config):
    return FLJobSimulator(shard_config).run_rounds(8)


class TestOneShardEquivalence:
    def test_one_shard_unbounded_is_byte_identical_to_engine(self, shard_config, shard_rounds):
        """The acceptance invariant: a 1-shard tier with unbounded queues
        reproduces the plain EngineFLStore byte for byte — per-request rows,
        timings, and the aggregate report — for every registered workload."""
        for workload_name in list_workloads():
            plain = EngineFLStore(_ingested_flstore(shard_config, shard_rounds))
            sharded = ShardedEngineFLStore([_ingested_flstore(shard_config, shard_rounds)])
            gen_plain = RequestTraceGenerator(plain.catalog, seed=3)
            gen_sharded = RequestTraceGenerator(sharded.catalog, seed=3)
            trace_plain = gen_plain.workload_trace(workload_name, 4)
            trace_sharded = gen_sharded.workload_trace(workload_name, 4)
            arrivals = [0.0, 0.0, 0.5, 1.0]
            report_plain = plain.run_open_loop(trace_plain, arrivals, label="x", keepalive=True)
            report_sharded = sharded.run_open_loop(
                trace_sharded, arrivals, label="x", keepalive=True
            )
            assert report_sharded.row() == report_plain.row(), workload_name
            rows_plain = report_plain.to_records(system="s", model_name="m")
            rows_sharded = report_sharded.to_records(system="s", model_name="m")
            assert rows_sharded == rows_plain, workload_name
            timings_plain = [
                (o.request.request_id, o.arrived_at, o.started_at, o.completed_at, o.disposition)
                for o in report_plain.outcomes
            ]
            timings_sharded = [
                (o.request.request_id, o.arrived_at, o.started_at, o.completed_at, o.disposition)
                for o in report_sharded.outcomes
            ]
            assert timings_sharded == timings_plain, workload_name

    def test_keepalive_survives_idle_gaps_like_plain_engine(self, shard_config, shard_rounds):
        """Regression: the front door routes at arrival time, so a shard's
        own outstanding count is zero during an inter-arrival gap; its
        keep-alive daemon must survive the gap (the plain engine's count
        includes submitted-but-not-yet-arrived requests)."""
        plain = EngineFLStore(_ingested_flstore(shard_config, shard_rounds))
        sharded = ShardedEngineFLStore([_ingested_flstore(shard_config, shard_rounds)])
        gen_plain = RequestTraceGenerator(plain.catalog, seed=3)
        gen_sharded = RequestTraceGenerator(sharded.catalog, seed=3)
        trace_plain = gen_plain.workload_trace("inference", 2)
        trace_sharded = gen_sharded.workload_trace("inference", 2)
        # The second arrival lands two keep-alive intervals (60s) after the
        # first completed, so the shard is idle at the t=60 and t=120 pings.
        arrivals = [0.0, 130.0]
        report_plain = plain.run_open_loop(trace_plain, arrivals, label="gap", keepalive=True)
        report_sharded = sharded.run_open_loop(trace_sharded, arrivals, label="gap", keepalive=True)
        assert report_plain.keepalive_pings > 0
        assert report_sharded.row() == report_plain.row()

    def test_closed_loop_matches_direct_serve(self, shard_config, shard_rounds):
        direct = _ingested_flstore(shard_config, shard_rounds)
        sharded = ShardedEngineFLStore([_ingested_flstore(shard_config, shard_rounds)])
        gen_direct = RequestTraceGenerator(direct.catalog, seed=3)
        gen_sharded = RequestTraceGenerator(sharded.catalog, seed=3)
        trace_direct = gen_direct.mixed_trace(["inference", "clustering"], 10)
        trace_sharded = gen_sharded.mixed_trace(["inference", "clustering"], 10)
        expected = [direct.serve(request) for request in trace_direct]
        actual = sharded.run_closed_loop(trace_sharded)
        for want, got in zip(expected, actual):
            assert got.latency == want.latency
            assert got.cost == want.cost
            assert got.served_by == want.served_by


class TestMultiShard:
    def _sharded(self, shard_config, shard_rounds, num_shards, **kwargs):
        return ShardedEngineFLStore(
            [_ingested_flstore(shard_config, shard_rounds) for _ in range(num_shards)],
            **kwargs,
        )

    def test_requests_partition_across_shards(self, shard_config, shard_rounds):
        sharded = self._sharded(shard_config, shard_rounds, 3)
        generator = RequestTraceGenerator(sharded.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering", "scheduling_perf"], 30)
        report = sharded.run_open_loop(trace, [0.2 * i for i in range(len(trace))], label="mix")
        assert report.completed == 30
        assert sum(sharded.routed_counts) == 30
        # The mixed trace spans several rounds/clients, so more than one
        # shard must receive traffic.
        assert sum(1 for count in sharded.routed_counts if count > 0) >= 2
        stats = sharded.shard_stats()
        assert [row["routed"] for row in stats] == sharded.routed_counts
        assert sharded.cached_bytes == sum(row["cached_bytes"] for row in stats)
        assert sharded.live_key_count == sum(row["live_keys"] for row in stats)
        assert sharded.total_latency_seconds > 0
        assert sharded.total_cost_dollars > 0

    def test_same_routing_key_lands_on_same_shard(self, shard_config, shard_rounds):
        sharded = self._sharded(shard_config, shard_rounds, 4)
        generator = RequestTraceGenerator(sharded.catalog, seed=3)
        # P1 requests all target the latest round -> one routing key.
        trace = generator.workload_trace("inference", 8)
        sharded.run_open_loop(trace, [0.0] * len(trace), label="hot")
        assert sorted(sharded.routed_counts, reverse=True)[0] == 8

    def test_jsq_spreads_the_hot_key_hashing_concentrates(self, shard_config, shard_rounds):
        """The load-aware routing claim, end to end: P1 traffic (one routing
        key) melts a single shard under pure hashing, while JSQ spreads it
        over the key's affinity candidates — lower ``max_shard_routed`` and
        a lower queueing tail at identical offered load."""

        def hot_burst(router_kind):
            sharded = self._sharded(
                shard_config, shard_rounds, 4, router=make_router(router_kind, 4)
            )
            generator = RequestTraceGenerator(sharded.catalog, seed=3)
            trace = generator.workload_trace("inference", 12)
            report = sharded.run_open_loop(trace, [0.0] * len(trace), label=router_kind)
            return sharded, report

        hashed_tier, hashed_report = hot_burst("consistent-hash")
        jsq_tier, jsq_report = hot_burst("jsq")
        assert max(hashed_tier.routed_counts) == 12  # the hot-shard ceiling
        assert max(jsq_tier.routed_counts) < 12
        # JSQ stays on the key's two affinity candidates (fanout=2), so the
        # other shards' caches are untouched.
        assert sum(1 for count in jsq_tier.routed_counts if count) == 2
        assert jsq_report.completed == hashed_report.completed == 12
        assert jsq_report.p99_sojourn_seconds < hashed_report.p99_sojourn_seconds

    def test_jsq_routing_is_deterministic(self, shard_config, shard_rounds):
        def run_once():
            sharded = self._sharded(
                shard_config, shard_rounds, 3, router=make_router("jsq", 3)
            )
            generator = RequestTraceGenerator(sharded.catalog, seed=3)
            trace = generator.mixed_trace(["inference", "clustering"], 18)
            report = sharded.run_open_loop(
                trace, [0.05 * i for i in range(len(trace))], label="jsq"
            )
            return report.row(), list(sharded.routed_counts)

        assert run_once() == run_once()

    def test_mismatched_router_rejected(self, shard_config, shard_rounds):
        with pytest.raises(ValueError):
            self._sharded(shard_config, shard_rounds, 2, router=make_router("modulo", 3))

    def test_empty_tier_rejected(self):
        with pytest.raises(ValueError):
            ShardedEngineFLStore([])


class TestAdmissionControl:
    def _burst(self, sharded, num_requests=12):
        generator = RequestTraceGenerator(sharded.catalog, seed=3)
        trace = generator.workload_trace("inference", num_requests)
        return sharded.run_open_loop(trace, [0.0] * len(trace), label="burst")

    def test_drop_policy_sheds_and_conserves(self, shard_config, shard_rounds):
        sharded = ShardedEngineFLStore(
            [_ingested_flstore(shard_config, shard_rounds)],
            max_queue_depth=2,
            shed_policy="drop",
        )
        report = self._burst(sharded, num_requests=12)
        assert report.shed > 0
        assert report.degraded == 0
        assert report.served + report.degraded + report.shed == report.submitted
        assert report.shed_rate == pytest.approx(report.shed / report.submitted)
        assert report.completed == report.served
        shed_outcomes = [o for o in report.outcomes if o.disposition == "shed"]
        assert len(shed_outcomes) == report.shed
        for outcome in shed_outcomes:
            # The rejection is instantaneous on the serving tier and costs
            # nothing; the row still exists and carries the client RTT.
            assert outcome.completed_at == outcome.arrived_at
            assert outcome.result.cost.total_dollars == 0.0
            assert outcome.result.latency.communication_seconds > 0
        # Platform-level shed accounting ties out.
        assert sharded.shed_requests == report.shed
        assert sharded.shards[0].platform.stats.requests_shed == report.shed

    def test_degrade_policy_serves_on_objstore_path(self, shard_config, shard_rounds):
        sharded = ShardedEngineFLStore(
            [_ingested_flstore(shard_config, shard_rounds)],
            max_queue_depth=2,
            shed_policy="degrade-to-objstore",
        )
        report = self._burst(sharded, num_requests=12)
        assert report.degraded > 0
        assert report.shed == 0
        assert report.served + report.degraded + report.shed == report.submitted
        assert report.completed == report.served + report.degraded
        degraded = [o for o in report.outcomes if o.disposition == "degraded"]
        cold_start = sharded.config.serverless.cold_start_seconds
        for outcome in degraded:
            # The bypass path pays a cold start plus object-store fetches
            # and real compute: strictly slower than a warm cache hit.
            assert outcome.result.latency.cold_start_seconds == pytest.approx(cold_start)
            assert outcome.result.latency.communication_seconds > 0
            assert outcome.result.cost.total_dollars > 0
            assert outcome.result.cache_hits == 0
        assert sharded.degraded_requests == report.degraded

    def test_unbounded_queue_never_sheds(self, shard_config, shard_rounds):
        sharded = ShardedEngineFLStore(
            [_ingested_flstore(shard_config, shard_rounds)], max_queue_depth=0
        )
        report = self._burst(sharded, num_requests=12)
        assert report.shed == 0 and report.degraded == 0
        assert report.served == report.submitted

    def test_engine_override_rebounds_platform_queues(self, shard_config, shard_rounds):
        """An admission bound looser than config.max_queue_depth must loosen
        the per-function queues too, not crash with CapacityError when the
        admitted burst outgrows the config-sized queue."""
        from dataclasses import replace

        config = replace(
            shard_config,
            serverless=replace(shard_config.serverless, max_queue_depth=2),
        )
        rounds = shard_rounds
        sharded = ShardedEngineFLStore(
            [_ingested_flstore(config, rounds)], max_queue_depth=0
        )
        report = self._burst(sharded, num_requests=12)
        assert report.shed == 0 and report.degraded == 0
        assert report.served == report.submitted

    def test_shedding_is_deterministic(self, shard_config, shard_rounds):
        def run_once():
            sharded = ShardedEngineFLStore(
                [_ingested_flstore(shard_config, shard_rounds) for _ in range(2)],
                max_queue_depth=2,
                shed_policy="drop",
            )
            generator = RequestTraceGenerator(sharded.catalog, seed=3)
            trace = generator.mixed_trace(["inference", "clustering"], 20)
            report = sharded.run_open_loop(trace, [0.05 * i for i in range(len(trace))], label="d")
            return report.row(), [
                (o.request.request_id, o.disposition, o.completed_at) for o in report.outcomes
            ]

        assert run_once() == run_once()


class TestShardSweep:
    def test_shard_sweep_reports_tail_latency_and_shedding(self):
        from repro.analysis.experiments import run_shard_sweep

        result = run_shard_sweep(
            shard_counts=(1, 2),
            utilizations=(2.0,),
            num_rounds=5,
            num_requests=16,
            max_queue_depth=3,
            shed_policy="drop",
        )
        rows = result["rows"]
        assert len(rows) == 2
        for row in rows:
            assert row["conserved"] is True
            assert row["served"] + row["shed"] + row["degraded"] == 16
            assert "p99_sojourn_seconds" in row and "shed_rate" in row
            assert 0.0 <= row["shed_rate"] <= 1.0
            assert row["shards"] in (1, 2)
        assert result["shed_policy"] == "drop"
        assert result["mean_service_seconds"] > 0

    def test_shard_sweep_jsq_reduces_hot_key_imbalance(self):
        """`--router jsq` in the sweep: on a P1-only (single hot key) mix the
        JSQ placement's ``max_shard_routed`` must sit well below hashing's
        all-on-one-shard count at the same offered overload."""
        from repro.analysis.experiments import run_shard_sweep

        def max_routed(router_kind):
            result = run_shard_sweep(
                workloads=("inference",),
                process="bursty",
                shard_counts=(4,),
                utilizations=(2.0,),
                num_rounds=5,
                num_requests=16,
                max_queue_depth=0,
                router_kind=router_kind,
            )
            (row,) = result["rows"]
            assert row["conserved"] is True
            return row["max_shard_routed"]

        hashed = max_routed("consistent-hash")
        jsq = max_routed("jsq")
        assert hashed == 16  # every request on the one hot shard
        assert jsq < hashed
