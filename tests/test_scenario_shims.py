"""Byte-identity of the legacy ``run_*_sweep`` shims vs their pre-redesign output.

The golden fixtures under ``tests/data/golden_sweeps/`` were captured from
the pre-scenario implementations (PR 2-4 code) at seed 7, serialized with
``json.dump(..., indent=2)``.  The shims — now thin grids over
``repro.scenario.sweep`` — must reproduce them *byte for byte*: same values,
same row order, same key order.  Any drift in the scenario layer's config
construction, trace generation, arrival sampling, or report assembly shows
up here first.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    LOAD_SWEEP_WORKLOADS,
    calibrate_service_time,
    run_autoscale_sweep,
    run_load_sweep,
    run_shard_sweep,
)
from repro.scenario import DEFAULT_SCENARIO_WORKLOADS, calibrate_mean_service_seconds

GOLDEN_DIR = Path(__file__).parent / "data" / "golden_sweeps"

#: fixture name -> (shim, the exact kwargs the fixture was captured with).
GOLDEN_RUNS = {
    "load": (
        run_load_sweep,
        dict(
            processes=("poisson", "bursty"),
            utilizations=(0.5, 2.0),
            num_rounds=5,
            num_requests=24,
            seed=7,
        ),
    ),
    "shard": (
        run_shard_sweep,
        dict(
            process="bursty",
            shard_counts=(1, 2),
            utilizations=(1.0, 2.0),
            num_rounds=5,
            num_requests=16,
            seed=7,
            max_queue_depth=3,
            shed_policy="drop",
        ),
    ),
    "shard_degrade": (
        run_shard_sweep,
        dict(
            process="poisson",
            shard_counts=(2,),
            utilizations=(2.0,),
            num_rounds=5,
            num_requests=16,
            seed=7,
            max_queue_depth=2,
            shed_policy="degrade-to-objstore",
            router_kind="modulo",
        ),
    ),
    "autoscale": (
        run_autoscale_sweep,
        dict(
            process="diurnal",
            utilizations=(2.5,),
            num_rounds=5,
            num_requests=48,
            seed=7,
            max_queue_depth=2,
            shed_policy="drop",
            start_shards=1,
            control_interval=5.0,
        ),
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_legacy_sweep_is_byte_identical_to_pre_redesign_output(name):
    shim, kwargs = GOLDEN_RUNS[name]
    result = shim(**kwargs)
    # Serialized comparison: values, row order, AND key order must all match
    # the pre-redesign capture byte for byte.
    assert json.dumps(result, indent=2) == (GOLDEN_DIR / f"{name}.json").read_text()


def test_parallel_shim_rows_match_serial():
    """Fanning cells out to worker processes must not change a single byte."""
    serial = run_load_sweep(
        processes=("poisson",), utilizations=(0.5, 2.0), num_rounds=4, num_requests=10, seed=7
    )
    parallel = run_load_sweep(
        processes=("poisson",),
        utilizations=(0.5, 2.0),
        num_rounds=4,
        num_requests=10,
        seed=7,
        workers=2,
    )
    assert json.dumps(parallel) == json.dumps(serial)


def test_load_sweep_workloads_alias_scenario_default():
    assert LOAD_SWEEP_WORKLOADS == DEFAULT_SCENARIO_WORKLOADS


def test_calibrate_service_time_delegates_to_scenario_layer():
    direct = calibrate_mean_service_seconds(
        "efficientnet_v2_small", LOAD_SWEEP_WORKLOADS, 4, 12, 7
    )
    assert calibrate_service_time("efficientnet_v2_small", num_rounds=4, num_requests=12) == direct


def test_unknown_autoscale_policies_still_fail_before_calibration():
    with pytest.raises(ValueError, match="unknown autoscaler policies"):
        run_autoscale_sweep(policies=("reactive", "psychic"))
