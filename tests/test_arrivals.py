"""Open-loop arrival processes: determinism, shape, and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.arrivals import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_process,
)


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
class TestEveryProcess:
    def test_times_are_positive_and_nondecreasing(self, kind):
        times = make_arrival_process(kind, rate_rps=5.0, seed=7).times(200)
        assert len(times) == 200
        assert times[0] > 0
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_same_seed_is_byte_identical(self, kind):
        first = make_arrival_process(kind, rate_rps=5.0, seed=7).times(100)
        second = make_arrival_process(kind, rate_rps=5.0, seed=7).times(100)
        assert first == second

    def test_different_seeds_differ(self, kind):
        first = make_arrival_process(kind, rate_rps=5.0, seed=7).times(50)
        second = make_arrival_process(kind, rate_rps=5.0, seed=8).times(50)
        assert first != second

    def test_empty_request_count(self, kind):
        assert make_arrival_process(kind, rate_rps=5.0, seed=7).times(0) == []

    def test_mean_rate_matches_nominal_rate(self, kind):
        process = make_arrival_process(kind, rate_rps=4.0, seed=7)
        assert process.mean_rate_rps == 4.0
        # Long-run empirical rate lands near the nominal one (loose factor-2
        # bounds: these are stochastic processes at a finite sample size).
        times = process.times(2000)
        empirical = len(times) / times[-1]
        assert 0.5 * 4.0 <= empirical <= 2.0 * 4.0


class TestPoisson:
    def test_gap_mean_tracks_rate(self):
        times = PoissonArrivals(rate_rps=10.0, seed=7).times(5000)
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.1)


class TestBursty:
    def test_on_rate_compensates_off_time(self):
        process = BurstyArrivals(rate_rps=2.0, seed=7, mean_on_seconds=5.0, mean_off_seconds=15.0)
        assert process.burst_rate_rps == pytest.approx(8.0)  # 25% duty cycle

    def test_burstier_than_poisson_at_equal_rate(self):
        # The squared coefficient of variation of the gaps exceeds 1 (the
        # Poisson value) for an interrupted Poisson process.
        bursty = BurstyArrivals(rate_rps=2.0, seed=7).times(4000)
        gaps = np.diff(bursty)
        cv2 = np.var(gaps) / np.mean(gaps) ** 2
        assert cv2 > 1.2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate_rps=1.0, mean_on_seconds=0.0)


class TestDiurnal:
    def test_rate_modulation_spans_peak_and_trough(self):
        process = DiurnalArrivals(rate_rps=10.0, seed=7, amplitude=0.8, period_seconds=100.0)
        assert process._rate_at(25.0) == pytest.approx(18.0)  # peak of the sinusoid
        assert process._rate_at(75.0) == pytest.approx(2.0)  # trough

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(rate_rps=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate_rps=1.0, period_seconds=0.0)


class TestFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_arrival_process("weibull", rate_rps=1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            make_arrival_process("poisson", rate_rps=0.0)
