"""Unit conversions."""

from __future__ import annotations

import pytest

from repro.common import units


def test_constants_are_powers_of_1024():
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB
    assert units.TB == 1024 * units.GB


def test_mb_to_bytes_round_trip():
    assert units.bytes_to_mb(units.mb_to_bytes(82.7)) == pytest.approx(82.7, rel=1e-6)


def test_gb_to_bytes_round_trip():
    assert units.bytes_to_gb(units.gb_to_bytes(10)) == pytest.approx(10.0)


def test_bytes_to_tb():
    assert units.bytes_to_tb(units.TB) == pytest.approx(1.0)


def test_seconds_to_hours():
    assert units.seconds_to_hours(7200) == pytest.approx(2.0)
    assert units.hours_to_seconds(0.5) == pytest.approx(1800.0)


def test_per_month_to_per_second():
    per_second = units.per_month_to_per_second(30.0 * 86400.0)
    assert per_second == pytest.approx(1.0)


def test_per_hour_to_per_second():
    assert units.per_hour_to_per_second(3600.0) == pytest.approx(1.0)


def test_mb_to_bytes_rounds_to_int():
    assert isinstance(units.mb_to_bytes(1.5), int)
    assert units.mb_to_bytes(1.5) == units.MB + units.MB // 2
