"""Configuration dataclass validation and presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.config import (
    CachePolicyConfig,
    FLJobConfig,
    NetworkConfig,
    PricingConfig,
    ServerlessConfig,
    SimulationConfig,
)


class TestFLJobConfig:
    def test_defaults_match_paper_setup(self):
        job = FLJobConfig()
        assert job.total_clients == 250
        assert job.clients_per_round == 10
        assert job.total_rounds == 1000
        assert job.model_name == "efficientnet_v2_small"

    def test_rejects_more_selected_than_total(self):
        with pytest.raises(ConfigurationError):
            FLJobConfig(total_clients=5, clients_per_round=10)

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError):
            FLJobConfig(total_rounds=0)

    def test_rejects_bad_malicious_fraction(self):
        with pytest.raises(ConfigurationError):
            FLJobConfig(malicious_fraction=1.0)

    def test_rejects_nonpositive_reduced_dim(self):
        with pytest.raises(ConfigurationError):
            FLJobConfig(reduced_dim=0)


class TestNetworkConfig:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(objstore_bandwidth_mb_per_s=0.0)

    def test_defaults_make_cache_faster_than_objstore(self):
        net = NetworkConfig()
        assert net.cache_bandwidth_mb_per_s > net.objstore_bandwidth_mb_per_s
        assert net.cache_rtt_seconds < net.objstore_rtt_seconds


class TestPricingConfig:
    def test_rejects_negative_prices(self):
        with pytest.raises(ConfigurationError):
            PricingConfig(aggregator_cost_per_hour=-1.0)

    def test_cache_hourly_exists(self):
        assert PricingConfig().cache_node_cost_per_hour > 0


class TestServerlessConfig:
    def test_rejects_default_memory_above_max(self):
        with pytest.raises(ConfigurationError):
            ServerlessConfig(default_function_memory_bytes=20 * 1024**3)

    def test_rejects_negative_replication(self):
        with pytest.raises(ConfigurationError):
            ServerlessConfig(replication_factor=-1)

    def test_lambda_limit_is_10gb(self):
        assert ServerlessConfig().max_function_memory_bytes == 10 * 1024**3

    def test_admission_defaults_are_unbounded_drop(self):
        config = ServerlessConfig()
        assert config.max_queue_depth == 0
        assert config.shed_policy == "drop"

    def test_rejects_negative_queue_depth(self):
        with pytest.raises(ConfigurationError):
            ServerlessConfig(max_queue_depth=-1)

    def test_rejects_unknown_shed_policy(self):
        with pytest.raises(ConfigurationError):
            ServerlessConfig(shed_policy="retry-forever")

    def test_accepts_degrade_to_objstore(self):
        config = ServerlessConfig(max_queue_depth=4, shed_policy="degrade-to-objstore")
        assert config.max_queue_depth == 4


class TestCachePolicyConfig:
    def test_rejects_nonpositive_recent_rounds(self):
        with pytest.raises(ConfigurationError):
            CachePolicyConfig(metadata_recent_rounds=0)

    def test_rejects_bad_limited_fraction(self):
        with pytest.raises(ConfigurationError):
            CachePolicyConfig(limited_capacity_fraction=0.0)

    def test_default_recent_rounds_is_ten(self):
        assert CachePolicyConfig().metadata_recent_rounds == 10


class TestSimulationConfig:
    def test_small_preset_is_small(self):
        config = SimulationConfig.small()
        assert config.job.total_clients <= 50
        assert config.trace_num_requests <= 500

    def test_paper_preset_uses_requested_model(self):
        config = SimulationConfig.paper(model_name="resnet18")
        assert config.job.model_name == "resnet18"
        assert config.trace_duration_hours == 50.0
        assert config.trace_num_requests == 3000

    def test_with_model_returns_new_config(self):
        config = SimulationConfig.small()
        other = config.with_model("mobilenet_v3_small")
        assert other.job.model_name == "mobilenet_v3_small"
        assert config.job.model_name != "mobilenet_v3_small"

    def test_with_job_overrides_fields(self):
        config = SimulationConfig.small().with_job(total_clients=40, clients_per_round=4)
        assert config.job.total_clients == 40
        assert config.job.clients_per_round == 4

    def test_config_is_frozen(self):
        config = SimulationConfig.small()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 1  # type: ignore[misc]
