"""Serverless cache cluster, Cache Engine, and Request Tracker."""

from __future__ import annotations

import pytest

from repro.cloud.object_store import ObjectStore
from repro.common.errors import CapacityError, DataNotFoundError
from repro.common.units import GB, MB
from repro.config import PricingConfig, ServerlessConfig
from repro.core.cache_engine import CacheEngine
from repro.core.policies.factory import make_policy_bundle
from repro.core.request_tracker import RequestTracker
from repro.core.serverless_cache import ServerlessCacheCluster
from repro.fl.keys import DataKey
from repro.serverless.platform import ServerlessPlatform
from repro.workloads.base import WorkloadRequest


@pytest.fixture()
def platform():
    return ServerlessPlatform(ServerlessConfig(), PricingConfig())


@pytest.fixture()
def cluster(platform):
    return ServerlessCacheCluster(platform, replication_factor=0)


@pytest.fixture()
def replicated_cluster(platform):
    return ServerlessCacheCluster(platform, replication_factor=2)


@pytest.fixture()
def engine(cluster, topology, cost_model):
    store = ObjectStore(topology.objstore, cost_model)
    return CacheEngine(make_policy_bundle("tailored"), cluster, store)


class TestServerlessCacheCluster:
    def test_place_and_get(self, cluster):
        key = DataKey.update(1, 0)
        placement = cluster.place(key, {"w": 1}, size_bytes=50 * MB)
        assert cluster.contains(key)
        assert cluster.get_object(key) == {"w": 1}
        assert cluster.primary_function_of(key) == placement.primary_function_id

    def test_first_placement_spawns_function(self, cluster, platform):
        cluster.place(DataKey.update(1, 0), b"", size_bytes=10 * MB)
        assert platform.warm_count == 1

    def test_best_fit_reuses_existing_function(self, cluster, platform):
        cluster.place(DataKey.update(1, 0), b"", size_bytes=10 * MB)
        cluster.place(DataKey.update(2, 0), b"", size_bytes=10 * MB)
        assert platform.warm_count == 1

    def test_spawns_new_function_when_full(self, cluster, platform):
        big = int(3.9 * GB)
        cluster.place(DataKey.update(1, 0), b"", size_bytes=big)
        cluster.place(DataKey.update(2, 0), b"", size_bytes=big)
        assert platform.warm_count == 2

    def test_object_larger_than_max_memory_rejected(self, cluster):
        with pytest.raises(CapacityError):
            cluster.place(DataKey.update(1, 0), b"", size_bytes=30 * GB)

    def test_replication_places_copies_on_distinct_functions(self, replicated_cluster):
        key = DataKey.update(1, 0)
        placement = replicated_cluster.place(key, b"", size_bytes=10 * MB)
        assert len(placement.replica_function_ids) == 2
        assert placement.primary_function_id not in placement.replica_function_ids

    def test_failover_to_replica_after_reclamation(self, replicated_cluster, platform):
        key = DataKey.update(1, 0)
        placement = replicated_cluster.place(key, b"", size_bytes=10 * MB)
        platform.reclaim_function(placement.primary_function_id)
        resolved = replicated_cluster.resolve(key)
        assert resolved.is_hit
        assert resolved.failed_over
        assert resolved.function_id in placement.replica_function_ids

    def test_total_loss_without_replicas(self, cluster, platform):
        key = DataKey.update(1, 0)
        placement = cluster.place(key, b"", size_bytes=10 * MB)
        platform.reclaim_function(placement.primary_function_id)
        assert not cluster.resolve(key).is_hit
        assert cluster.drop_lost_keys() == [key]
        with pytest.raises(DataNotFoundError):
            cluster.get_object(key)

    def test_evict_removes_every_copy(self, replicated_cluster):
        key = DataKey.update(1, 0)
        replicated_cluster.place(key, b"", size_bytes=10 * MB)
        assert replicated_cluster.evict(key) is True
        assert not replicated_cluster.contains(key)
        assert replicated_cluster.evict(key) is False

    def test_cached_sizes_and_bytes(self, cluster):
        cluster.place(DataKey.update(1, 0), b"", size_bytes=10 * MB)
        cluster.place(DataKey.update(2, 0), b"", size_bytes=20 * MB)
        assert cluster.total_cached_bytes == 30 * MB
        assert cluster.cached_sizes()[DataKey.update(2, 0)] == 20 * MB
        assert len(cluster.cached_keys()) == 2

    def test_replacement_of_existing_key(self, cluster):
        key = DataKey.update(1, 0)
        cluster.place(key, b"old", size_bytes=10 * MB)
        cluster.place(key, b"new", size_bytes=15 * MB)
        assert cluster.get_object(key) == b"new"
        assert cluster.total_cached_bytes == 15 * MB

    def test_pick_execution_function_prefers_largest_share(self, cluster):
        big = int(3.9 * GB)
        key_a = DataKey.update(1, 0)
        key_b = DataKey.update(2, 0)
        cluster.place(key_a, b"", size_bytes=big)
        cluster.place(key_b, b"", size_bytes=10 * MB)
        chosen = cluster.pick_execution_function([key_a, key_b])
        assert chosen == cluster.primary_function_of(key_a)

    def test_pick_execution_function_none_when_nothing_cached(self, cluster):
        assert cluster.pick_execution_function([DataKey.update(9, 9)]) is None


class TestCacheEngine:
    def test_ingest_places_hot_data_and_backs_up_everything(self, engine, rounds):
        report = engine.ingest_round(rounds[0])
        assert report.admitted_keys > 0
        assert report.backup_cost.total_dollars > 0
        # Every object of the round is durable in the persistent store.
        for key in rounds[0].all_keys():
            assert engine.persistent_store.contains(key)

    def test_lookup_hits_and_misses(self, engine, rounds):
        engine.ingest_round(rounds[0])
        keys = rounds[0].update_keys()
        locations = engine.lookup(keys)
        assert all(locations[k] is not None for k in keys)
        assert engine.lookup([DataKey.update(999, 999)])[DataKey.update(999, 999)] is None

    def test_eviction_across_rounds(self, engine, rounds):
        for record in rounds[:3]:
            engine.ingest_round(record)
        # P2 keeps the latest round (plus the one before); round 0 must be gone.
        assert not any(engine.is_cached(k) for k in rounds[0].update_keys())
        assert all(engine.is_cached(k) for k in rounds[2].update_keys())

    def test_admit_single_object(self, engine, rounds):
        key = rounds[0].update_keys()[0]
        value = rounds[0].get(key)
        engine.admit(key, value)
        assert engine.is_cached(key)

    def test_register_location_and_overhead(self, engine):
        engine.register_location(DataKey.update(1, 1), "fn-0001")
        assert engine.location_of(DataKey.update(1, 1)) == "fn-0001"
        assert engine.location_of(DataKey.update(2, 2)) is None
        assert engine.memory_overhead_bytes() > 0

    def test_plan_request_uses_policy(self, engine, rounds):
        for record in rounds[:4]:
            engine.ingest_round(record)
        request = WorkloadRequest(request_id="q", workload="malicious_filtering", round_id=2)
        plan = engine.plan_request(request, rounds[2].update_keys())
        assert {k.round_id for k in plan.prefetch_keys} == {3}

    def test_capacity_enforced_for_bounded_policy(self, topology, cost_model, platform, small_config):
        store = ObjectStore(topology.objstore, cost_model)
        cluster = ServerlessCacheCluster(platform, replication_factor=0)
        policy = make_policy_bundle("lru")
        engine = CacheEngine(policy, cluster, store)
        for i in range(5):
            key = DataKey.update(i, 0)
            engine.admit(key, b"", now=float(i))
            # emulate sizes by registering admissions of known size
        # Direct capacity check via cluster bookkeeping: cached bytes should
        # never exceed the policy capacity after enforcement.
        assert cluster.total_cached_bytes <= policy.capacity_bytes


class TestRequestTracker:
    def test_submit_get_complete(self):
        tracker = RequestTracker()
        tracker.submit("r1", ["fn-0"])
        tracker.add_route("r1", "fn-1")
        assert tracker.get("r1").function_ids == ["fn-0", "fn-1"]
        assert not tracker.is_completed("r1")
        tracker.complete("r1")
        assert tracker.is_completed("r1")
        assert tracker.pending_requests() == []

    def test_duplicate_submit_rejected(self):
        tracker = RequestTracker()
        tracker.submit("r1")
        with pytest.raises(ValueError):
            tracker.submit("r1")

    def test_unknown_request_raises(self):
        with pytest.raises(KeyError):
            RequestTracker().get("nope")

    def test_reroute_counts_failovers(self):
        tracker = RequestTracker()
        tracker.submit("r1", ["fn-0"])
        tracker.reroute("r1", "fn-0", "fn-9")
        assert tracker.get("r1").function_ids == ["fn-9"]
        assert tracker.total_failovers == 1

    def test_contains_and_len(self):
        tracker = RequestTracker()
        tracker.submit("r1")
        assert "r1" in tracker
        assert len(tracker) == 1

    def test_memory_overhead_grows_with_requests(self):
        tracker = RequestTracker()
        for i in range(100):
            tracker.submit(f"r{i}", [f"fn-{i}"])
        small = tracker.memory_overhead_bytes()
        for i in range(100, 1000):
            tracker.submit(f"r{i}", [f"fn-{i}"])
        assert tracker.memory_overhead_bytes() > small

    def test_clear_completed(self):
        tracker = RequestTracker()
        tracker.submit("r1")
        tracker.submit("r2")
        tracker.complete("r1")
        assert tracker.clear_completed() == 1
        assert "r1" not in tracker and "r2" in tracker
