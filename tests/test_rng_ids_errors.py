"""Deterministic RNG derivation, identifier generation, and the error hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import (
    CacheMissError,
    CapacityError,
    ConfigurationError,
    DataNotFoundError,
    FLStoreError,
    FunctionReclaimedError,
    RequestRoutingError,
    WorkloadError,
)
from repro.common.ids import IdGenerator
from repro.common.rng import derive_rng, derive_seed, seeded_rng


class TestRng:
    def test_seeded_rng_is_deterministic(self):
        assert seeded_rng(42).integers(0, 1000) == seeded_rng(42).integers(0, 1000)

    def test_derive_rng_same_stream_same_values(self):
        a = derive_rng(7, "clients", 3).normal(size=5)
        b = derive_rng(7, "clients", 3).normal(size=5)
        np.testing.assert_allclose(a, b)

    def test_derive_rng_different_streams_differ(self):
        a = derive_rng(7, "clients", 3).normal(size=8)
        b = derive_rng(7, "clients", 4).normal(size=8)
        assert not np.allclose(a, b)

    def test_derive_rng_different_seeds_differ(self):
        a = derive_rng(7, "x").normal(size=8)
        b = derive_rng(8, "x").normal(size=8)
        assert not np.allclose(a, b)

    def test_derive_seed_is_stable_int(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert isinstance(derive_seed(1, "a"), int)
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestIdGenerator:
    def test_sequential_ids(self):
        gen = IdGenerator(prefix="fn")
        assert gen.next() == "fn-0000"
        assert gen.next() == "fn-0001"

    def test_width(self):
        gen = IdGenerator(prefix="r", width=6)
        assert gen.next() == "r-000000"

    def test_independent_generators(self):
        a, b = IdGenerator(prefix="a"), IdGenerator(prefix="b")
        a.next()
        assert b.next() == "b-0000"

    def test_peek_count_does_not_consume(self):
        gen = IdGenerator()
        gen.next()
        assert gen.peek_count() == 1
        assert gen.next() == "id-0001"


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            ConfigurationError,
            DataNotFoundError("k"),
            CacheMissError(),
            CapacityError(),
            FunctionReclaimedError("fn-0"),
            RequestRoutingError(),
            WorkloadError(),
        ):
            assert isinstance(exc if not isinstance(exc, type) else exc(), FLStoreError)

    def test_data_not_found_carries_key(self):
        err = DataNotFoundError(("c", 3), store="s3")
        assert err.key == ("c", 3)
        assert "s3" in str(err)

    def test_function_reclaimed_carries_id(self):
        err = FunctionReclaimedError("fn-0042")
        assert err.function_id == "fn-0042"
        assert "fn-0042" in str(err)

    def test_errors_can_be_raised_and_caught_as_base(self):
        with pytest.raises(FLStoreError):
            raise CapacityError("too big")
