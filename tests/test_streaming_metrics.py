"""Streaming metrics: full/streaming equivalence, fast-path sanity, memory.

The ``metrics="streaming"`` knob swaps the retained-row collector for O(1)
accumulators (:mod:`repro.engine.streaming`) and — on eligible plain-tier
specs — the event loop for the vectorized fast path
(:mod:`repro.engine.vectorized`).  These tests pin the contract:

* on the *event path*, a streaming run's report equals a full run's report
  in every exact column (counts, rates, means, depth profile), with only
  the percentile columns sketched (log-bucket quantiles, ~1% bucket error);
* the fast path preserves counts and conservation exactly, and its queueing
  columns stay within the documented approximation of the event path;
* a streaming run retains no per-request rows and its peak allocation stays
  flat in the request count (the memory guard).
"""

import math
import tracemalloc

import pytest

from repro.engine.streaming import METRICS_MODES, check_metrics_mode
from repro.engine.vectorized import fast_path_eligible
from repro.scenario import get_scenario, run
from repro.scenario.spec import ScenarioValidationError

#: LoadReport columns that must be *exactly* preserved by streaming
#: accumulation (integer accounting and closed-form aggregates).
EXACT_INT_FIELDS = (
    "submitted",
    "completed",
    "served",
    "requeued",
    "degraded",
    "shed",
    "max_queue_depth",
    "keepalive_pings",
    "reclamations",
)
EXACT_FLOAT_FIELDS = (
    "offered_rps",
    "goodput_rps",
    "horizon_seconds",
    "mean_sojourn_seconds",
    "mean_wait_seconds",
    "mean_service_seconds",
    "mean_queue_depth",
    "shed_rate",
    "violation_rate",
)
#: The only approximated columns on the event path: sketch-quantile error
#: is ~1% per bucket; 5% leaves headroom for interpolation at the tails.
SKETCHED_FIELDS = ("p50_sojourn_seconds", "p95_sojourn_seconds", "p99_sojourn_seconds")


def assert_streaming_matches_full(full, stream):
    """Streaming report equals the full one everywhere but the sketches."""
    for field in EXACT_INT_FIELDS:
        assert getattr(stream, field) == getattr(full, field), field
    for field in EXACT_FLOAT_FIELDS:
        assert math.isclose(
            getattr(stream, field), getattr(full, field), rel_tol=1e-9, abs_tol=1e-12
        ), field
    for field in SKETCHED_FIELDS:
        exact = getattr(full, field)
        sketched = getattr(stream, field)
        assert sketched == pytest.approx(exact, rel=0.05), field
    assert stream.outcomes == []
    assert len(full.outcomes) == full.submitted
    assert full.conserved and stream.conserved


class TestMetricsModeKnob:
    def test_modes(self):
        assert METRICS_MODES == ("full", "streaming")
        for mode in METRICS_MODES:
            check_metrics_mode(mode)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="metrics"):
            check_metrics_mode("rows")

    def test_spec_rejects_unknown_mode(self):
        spec = get_scenario("engine-baseline")
        with pytest.raises(ScenarioValidationError, match="metrics"):
            spec.with_overrides({"metrics": "rows"})


class TestEventPathEquivalenceSharded:
    """Sharded tier (never fast-path eligible): both modes run the event loop."""

    @pytest.fixture(scope="class")
    def reports(self):
        spec = get_scenario("sharded-burst").with_overrides({"workload.num_requests": 512})
        full = run(spec)
        stream = run(spec.with_overrides({"metrics": "streaming"}))
        return full, stream

    def test_streaming_matches_full(self, reports):
        full, stream = reports
        assert_streaming_matches_full(full.load, stream.load)

    def test_tier_accounting_preserved(self, reports):
        full, stream = reports
        assert stream.max_shard_routed == full.max_shard_routed
        assert stream.conserved and full.conserved


class TestEventPathEquivalencePlain:
    """Plain tier forced onto the event path (priority queues are ineligible)."""

    @pytest.fixture(scope="class")
    def reports(self):
        spec = get_scenario("engine-baseline").with_overrides(
            {"workload.num_requests": 256, "tier.queue_discipline": "priority"}
        )
        assert not fast_path_eligible(spec.with_overrides({"metrics": "streaming"}))
        full = run(spec)
        stream = run(spec.with_overrides({"metrics": "streaming"}))
        return full, stream

    def test_streaming_matches_full(self, reports):
        full, stream = reports
        assert_streaming_matches_full(full.load, stream.load)


class TestFastPathEligibility:
    def test_million_request_scenario_is_eligible(self):
        assert fast_path_eligible(get_scenario("million-request"))

    def test_full_metrics_is_not(self):
        assert not fast_path_eligible(get_scenario("engine-baseline"))

    def test_dynamic_topologies_are_not(self):
        for name in ("sharded-burst", "jsq-hotkey", "autoscale-diurnal", "fault-recovery"):
            spec = get_scenario(name).with_overrides({"metrics": "streaming"})
            assert not fast_path_eligible(spec), name

    def test_priority_discipline_is_not(self):
        spec = get_scenario("engine-baseline").with_overrides(
            {"metrics": "streaming", "tier.queue_discipline": "priority"}
        )
        assert not fast_path_eligible(spec)


class TestFastPathSanity:
    """The fast path against the event path on the same plain-tier spec.

    Counts and conservation are exact by construction.  The queueing columns
    carry the documented approximation (steady-state oracle memoization, no
    keep-alive/reclamation daemons re-cooling idle functions), so they are
    bounded loosely here — at low utilization the gap stays well under the
    factor the bounds allow, and tightening them would pin the approximation
    rather than the contract.
    """

    @pytest.fixture(scope="class")
    def reports(self):
        spec = get_scenario("engine-baseline").with_overrides(
            {"workload.num_requests": 512, "arrival.utilization": 0.4}
        )
        event = run(spec)
        fast = run(spec.with_overrides({"metrics": "streaming"}))
        return event.load, fast.load

    def test_counts_exact(self, reports):
        event, fast = reports
        for field in ("submitted", "completed", "served", "requeued", "degraded", "shed"):
            assert getattr(fast, field) == getattr(event, field), field
        assert fast.conserved
        assert fast.outcomes == []

    def test_queueing_columns_close(self, reports):
        event, fast = reports
        assert fast.mean_sojourn_seconds == pytest.approx(event.mean_sojourn_seconds, rel=0.35)
        assert fast.mean_wait_seconds == pytest.approx(event.mean_wait_seconds, rel=0.35)
        assert fast.mean_queue_depth == pytest.approx(event.mean_queue_depth, rel=0.35)
        assert 0 < fast.max_queue_depth <= 2 * event.max_queue_depth

    def test_percentiles_ordered(self, reports):
        _, fast = reports
        assert 0.0 < fast.p50_sojourn_seconds <= fast.p95_sojourn_seconds
        assert fast.p95_sojourn_seconds <= fast.p99_sojourn_seconds


class TestStreamingMemoryGuard:
    """A 10^5-request streaming run must not accumulate per-request state.

    The fast path holds a handful of float64 arrays (~0.8 MB each at this
    size) plus chunked transients — measured peak is ~10 MB.  The 24 MB
    bound fails loudly if anyone reintroduces per-request object retention
    (the full path's outcome rows alone would blow well past it).
    """

    def test_hundred_thousand_requests_bounded(self):
        spec = get_scenario("million-request").with_overrides(
            {"workload.num_requests": 100_000}
        )
        run(spec)  # warm imports, registries, and calibration caches
        tracemalloc.start()
        try:
            report = run(spec)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert report.load.outcomes == []
        assert report.load.completed == 100_000
        assert report.conserved
        assert peak < 24 * 2**20
