"""CLI entry point and result export helpers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import export_csv, export_json, load_json
from repro.cli import EXPERIMENTS, main


class TestExport:
    def test_export_and_load_json_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": [1, 2]}, {"a": 2.5, "b": {"x": 1}}]
        path = export_json(rows, tmp_path / "out" / "rows.json")
        assert path.exists()
        assert load_json(path) == [{"a": 1, "b": [1, 2]}, {"a": 2.5, "b": {"x": 1}}]

    def test_export_json_handles_result_mappings(self, tmp_path):
        result = {"rows": [{"a": 1}], "summary": (1, 2)}
        path = export_json(result, tmp_path / "result.json")
        loaded = load_json(path)
        assert loaded["rows"] == [{"a": 1}]
        assert loaded["summary"] == [1, 2]

    def test_export_csv_union_of_columns(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "c": [4, 5]}]
        path = export_csv(rows, tmp_path / "rows.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",") == ["a", "b", "c"]
        assert len(lines) == 3
        assert json.loads(lines[2].split(",", 2)[2].replace('""', '"').strip('"')) == [4, 5]


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table2" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "malicious_filtering" in out and "P2" in out

    def test_run_small_experiment_and_export(self, tmp_path, capsys):
        out_file = tmp_path / "fig19.json"
        assert main(["run", "fig19", "--out", str(out_file)]) == 0
        printed = capsys.readouterr().out
        assert "Model memory footprints" in printed
        assert out_file.exists()
        assert load_json(out_file)["num_models"] == 23

    def test_run_with_rounds_override(self, capsys):
        assert main(["run", "fig12", "--rounds", "6"]) == 0
        out = capsys.readouterr().out
        assert "Scalability" in out

    def test_run_csv_export(self, tmp_path, capsys):
        out_file = tmp_path / "sec55.csv"
        assert main(["run", "sec55", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "concurrent_requests" in out_file.read_text()

    def test_run_load_accepts_seed_and_workers(self, tmp_path, capsys):
        out_file = tmp_path / "load.json"
        assert (
            main(
                [
                    "run-load",
                    "--rounds", "5",
                    "--requests", "12",
                    "--seed", "9",
                    "--workers", "1",
                    "--processes", "poisson",
                    "--utilizations", "1.0",
                    "--out", str(out_file),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "Open-loop load sweep" in printed
        result = load_json(out_file)
        assert result["seed"] == 9
        assert len(result["rows"]) == 1
        assert "shed_rate" in result["rows"][0] and "violation_rate" in result["rows"][0]

    def test_run_shard_sweep_command(self, tmp_path, capsys):
        out_file = tmp_path / "shards.json"
        assert (
            main(
                [
                    "run-shard-sweep",
                    "--rounds", "5",
                    "--requests", "12",
                    "--shards", "1,2",
                    "--utilizations", "2.0",
                    "--max-queue-depth", "3",
                    "--shed-policy", "degrade-to-objstore",
                    "--out", str(out_file),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "Shard sweep" in printed
        result = load_json(out_file)
        assert result["shed_policy"] == "degrade-to-objstore"
        rows = result["rows"]
        assert [row["shards"] for row in rows] == [1, 2]
        for row in rows:
            assert row["conserved"] is True
            assert row["served"] + row["shed"] + row["degraded"] == 12

    def test_run_scenario_list(self, capsys):
        assert main(["run-scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "engine-baseline" in out and "autoscale-diurnal" in out

    def test_run_scenario_by_name_with_overrides(self, tmp_path, capsys):
        out_file = tmp_path / "scenario.json"
        assert (
            main(
                [
                    "run-scenario",
                    "--name", "engine-baseline",
                    "--smoke",
                    "--set", "arrival.utilization=0.5",
                    "--set", "seed=9",
                    "--out", str(out_file),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "Scenario: engine-baseline" in printed
        result = load_json(out_file)
        assert result["spec"]["arrival"]["utilization"] == 0.5
        assert result["spec"]["seed"] == 9
        (row,) = result["rows"]
        assert row["conserved"] is True
        # --smoke caps the trace at 12 requests; all accounted for.
        assert row["served"] + row["shed"] + row["degraded"] == 12
        assert result["mean_service_seconds"] > 0

    def test_run_scenario_from_file_with_sweep_axes(self, tmp_path, capsys):
        from repro.scenario import get_scenario, smoke_spec

        spec_file = smoke_spec(get_scenario("sharded-burst")).save(tmp_path / "spec.json")
        out_file = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "run-scenario",
                    "--spec", str(spec_file),
                    "--sweep", "tier.router_kind=consistent-hash,jsq",
                    "--out", str(out_file),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "Scenario sweep" in printed
        rows = load_json(out_file)["rows"]
        assert [row["router"] for row in rows] == ["consistent-hash", "jsq"]
        assert all(row["conserved"] for row in rows)

    def test_run_scenario_rejects_bad_input(self, capsys):
        # Exactly one of --spec/--name.
        assert main(["run-scenario"]) == 2
        assert main(["run-scenario", "--name", "no-such-scenario"]) == 2
        assert main(["run-scenario", "--name", "engine-baseline", "--set", "tier.bogus=1"]) == 2
        assert main(["run-scenario", "--name", "engine-baseline", "--set", "nonsense"]) == 2
        # Sweep-axis errors exit cleanly too: unknown field, bad value, and
        # a grid point that fails cross-field validation.
        assert main(["run-scenario", "--name", "engine-baseline", "--sweep", "tier.bogus=1,2"]) == 2
        assert (
            main(["run-scenario", "--name", "engine-baseline", "--sweep", "arrival.kind=poisson,bogus"])
            == 2
        )
        assert main(["run-scenario", "--name", "engine-baseline", "--sweep", "tier.shards=2,4"]) == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err and "error:" in err

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_every_registered_experiment_has_description(self):
        for name, (runner, description) in EXPERIMENTS.items():
            assert callable(runner)
            assert description
