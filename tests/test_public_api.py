"""The package's public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        config = repro.SimulationConfig.small(seed=3)
        simulator = repro.FLJobSimulator(config)
        flstore = repro.build_default_flstore(config)
        for record in simulator.rounds(3):
            flstore.ingest_round(record)
        request = flstore.make_request("inference", round_id=2)
        result = flstore.serve(request)
        assert isinstance(result, repro.ServeResult)
        assert repro.get_workload("inference").name == "inference"
        assert "inference" in repro.list_workloads()

    def test_workload_request_importable_from_top_level(self):
        request = repro.WorkloadRequest(request_id="x", workload="inference", round_id=0)
        assert request.round_id == 0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.analysis.experiments",
            "repro.analysis.experiments_appendix",
            "repro.analysis.capacity",
            "repro.analysis.export",
            "repro.baselines",
            "repro.cli",
            "repro.core",
            "repro.fl",
            "repro.network",
            "repro.routing",
            "repro.scenario",
            "repro.serverless",
            "repro.simulation",
            "repro.traces",
            "repro.workloads",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        assert importlib.import_module(module) is not None

    def test_every_public_module_has_a_docstring(self):
        import pkgutil

        package = importlib.import_module("repro")
        missing = []
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert missing == []
