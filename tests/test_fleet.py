"""The evaluation fleet: content hash, run manifest, incremental runner, report.

Covers the PR's acceptance criteria directly: ``run-missing`` twice back to
back executes zero cells the second time with a byte-identical report, and
editing one registered spec marks exactly that scenario's cells stale.
"""

from __future__ import annotations

import json

import pytest

from repro.fleet import (
    ArtifactStore,
    FleetError,
    FleetExperiment,
    RunManifest,
    code_fingerprint,
    default_fleet,
    fix_command,
    generate_report,
    load_fleet,
    params_hash,
    plan,
    plan_cells,
    run_missing,
)
from repro.cli import main
from repro.scenario import (
    ScenarioSpec,
    apply_overrides,
    get_scenario,
    list_scenarios,
    register_scenario,
)


def tiny_fleet(*scenarios: str) -> list[FleetExperiment]:
    """A one-experiment fleet over explicit scenarios (smoke cells run in ms)."""
    return [
        FleetExperiment(
            name="exp",
            title="Tiny fleet",
            scenarios=scenarios or ("engine-baseline",),
        )
    ]


def _reorder(value):
    """Recursively rebuild dicts with reversed key insertion order."""
    if isinstance(value, dict):
        return {key: _reorder(value[key]) for key in reversed(list(value))}
    if isinstance(value, list):
        return [_reorder(item) for item in value]
    return value


class TestContentHash:
    def test_stable_across_dict_key_order(self):
        spec = get_scenario("sharded-burst")
        shuffled = ScenarioSpec.from_dict(_reorder(spec.to_dict()))
        assert shuffled.content_hash() == spec.content_hash()

    def test_stable_across_toml_and_json_round_trips(self, tmp_path):
        spec = get_scenario("autoscale-diurnal")
        json_path = tmp_path / "spec.json"
        toml_path = tmp_path / "spec.toml"
        json_path.write_text(spec.to_json())
        toml_path.write_text(spec.to_toml())
        assert ScenarioSpec.load(json_path).content_hash() == spec.content_hash()
        assert ScenarioSpec.load(toml_path).content_hash() == spec.content_hash()

    def test_noop_override_preserves_hash(self):
        spec = get_scenario("sharded-burst")
        same = apply_overrides(
            spec,
            {
                "tier.shards": str(spec.tier.shards),
                "arrival.kind": spec.arrival.kind,
                "seed": str(spec.seed),
            },
        )
        assert same.content_hash() == spec.content_hash()

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": "8"},
            {"tier.shards": "8"},
            {"arrival.utilization": "1.5"},
            {"workload.num_requests": "99"},
            {"tier.queue_discipline": "wfq"},
        ],
    )
    def test_semantic_knob_changes_hash(self, override):
        spec = get_scenario("sharded-burst")
        assert apply_overrides(spec, override).content_hash() != spec.content_hash()

    def test_distinct_scenarios_have_distinct_hashes(self):
        hashes = {get_scenario(name).content_hash() for name in list_scenarios()}
        assert len(hashes) == len(list_scenarios())


class TestManifest:
    def test_empty_store_loads_and_round_trips(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.manifest.cells == {}
        store.manifest.save()
        assert RunManifest.load(tmp_path).cells == {}

    def test_corrupt_manifest_raises_fleet_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(FleetError, match="corrupt"):
            RunManifest.load(tmp_path)
        (tmp_path / "manifest.json").write_text("[1, 2]")
        with pytest.raises(FleetError, match="expected a JSON object"):
            RunManifest.load(tmp_path)

    def test_unchanged_resave_is_byte_identical_and_leaves_no_temp_files(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.record_cell(
            "exp/s#full",
            experiment="exp",
            scenario="s",
            axes={},
            variant="full",
            spec_hash="abc",
            seed=7,
            artifact_relpath="exp/s.json",
            report_json="{}",
        )
        first = (tmp_path / "manifest.json").read_bytes()
        store.manifest.save()
        assert (tmp_path / "manifest.json").read_bytes() == first
        assert not list(tmp_path.rglob("*.tmp"))

    def test_load_cell_json_errors_are_loud(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(FleetError, match="no recorded artifact"):
            store.load_cell_json("exp/s#full")
        entry = store.record_cell(
            "exp/s#full",
            experiment="exp",
            scenario="s",
            axes={},
            variant="full",
            spec_hash="abc",
            seed=7,
            artifact_relpath="exp/s.json",
            report_json='{"ok": true}',
        )
        assert store.load_cell_json("exp/s#full") == '{"ok": true}'
        store.manifest.artifact_path(entry).unlink()
        with pytest.raises(FleetError, match="missing"):
            store.load_cell_json("exp/s#full")

    def test_params_hash_is_order_insensitive_but_value_sensitive(self):
        assert params_hash({"a": 1, "b": 2}) == params_hash({"b": 2, "a": 1})
        assert params_hash({"a": 1}) != params_hash({"a": 2})

    def test_record_sweep_overwrites_identical_params_in_place(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = store.record_sweep("run-load", {"seed": 7}, [{"x": 1}])
        second = store.record_sweep("run-load", {"seed": 7}, [{"x": 2}])
        assert first == second
        assert len(store.manifest.sweeps) == 1
        other = store.record_sweep("run-load", {"seed": 8}, [{"x": 1}])
        assert other != first
        assert len(store.manifest.sweeps) == 2


class TestPlanning:
    def test_default_fleet_covers_registry_and_standing_sweeps(self):
        experiments = default_fleet()
        names = [experiment.name for experiment in experiments]
        assert names[0] == "scenarios"
        cells = plan_cells(experiments, smoke=True)
        headline = [cell for cell in cells if cell.experiment == "scenarios"]
        assert {cell.scenario for cell in headline} == set(list_scenarios())
        assert all(cell.variant == "smoke" for cell in cells)

    def test_plan_is_deterministic_and_smoke_variant_is_separate(self):
        fleet = tiny_fleet()
        smoke_ids = [cell.cell_id for cell in plan_cells(fleet, smoke=True)]
        assert smoke_ids == [cell.cell_id for cell in plan_cells(fleet, smoke=True)]
        full_ids = [cell.cell_id for cell in plan_cells(fleet, smoke=False)]
        assert set(smoke_ids).isdisjoint(full_ids)

    def test_axes_produce_grid_cells_with_stable_artifact_paths(self):
        fleet = [
            FleetExperiment(
                name="grid",
                title="grid",
                scenarios=("sharded-burst",),
                axes=(("tier.shards", (1, 2)),),
            )
        ]
        cells = plan_cells(fleet, smoke=True)
        assert [cell.axes for cell in cells] == [{"tier.shards": 1}, {"tier.shards": 2}]
        assert len({cell.artifact_relpath for cell in cells}) == 2
        for cell in cells:
            assert cell.spec.tier.shards == cell.axes["tier.shards"]

    def test_load_fleet_validates_shape(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps(
                {
                    "experiments": [
                        {"name": "a", "scenarios": ["engine-baseline"]},
                        {"name": "b", "axes": {"tier.shards": [1, 2]}},
                    ]
                }
            )
        )
        experiments = load_fleet(path)
        assert [e.name for e in experiments] == ["a", "b"]
        assert experiments[1].scenarios is None
        assert experiments[1].axes == (("tier.shards", (1, 2)),)
        for bad in (
            {},
            {"experiments": []},
            {"experiments": [{"title": "no name"}]},
            {"experiments": [{"name": "a"}, {"name": "a"}]},
            {"experiments": [{"name": "a", "bogus": 1}]},
        ):
            path.write_text(json.dumps(bad))
            with pytest.raises(FleetError):
                load_fleet(path)
        with pytest.raises(FleetError, match="does not exist"):
            load_fleet(tmp_path / "nope.json")


class TestIncrementalRunner:
    def test_second_run_executes_zero_cells_and_report_is_byte_identical(self, tmp_path):
        fleet = tiny_fleet("engine-baseline", "priority-overload")
        store = ArtifactStore(tmp_path / "artifacts")
        first = run_missing(fleet, store, smoke=True)
        assert (first["planned"], first["ran"], first["reused"]) == (2, 2, 0)
        generate_report(fleet, store, tmp_path / "report", smoke=True)
        report_bytes = (tmp_path / "report" / "report.md").read_bytes()
        csv_bytes = (tmp_path / "report" / "csv" / "exp.csv").read_bytes()

        # A fresh store (fresh process, same artifacts dir) must reuse everything.
        second_store = ArtifactStore(tmp_path / "artifacts")
        second = run_missing(fleet, second_store, smoke=True)
        assert (second["planned"], second["ran"], second["reused"]) == (2, 0, 2)
        generate_report(fleet, second_store, tmp_path / "report", smoke=True)
        assert (tmp_path / "report" / "report.md").read_bytes() == report_bytes
        assert (tmp_path / "report" / "csv" / "exp.csv").read_bytes() == csv_bytes

    def test_dry_run_writes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        summary = run_missing(tiny_fleet(), store, smoke=True, dry_run=True)
        assert summary["ran"] == 0
        assert summary["cells"][0]["action"] == "would-run"
        assert not (tmp_path / "manifest.json").exists()

    def test_editing_one_registered_spec_stales_exactly_that_scenarios_cells(self, tmp_path):
        fleet = tiny_fleet("engine-baseline", "priority-overload")
        store = ArtifactStore(tmp_path)
        run_missing(fleet, store, smoke=True)
        original = get_scenario("engine-baseline")
        try:
            register_scenario(
                apply_overrides(original, {"seed": str(original.seed + 1)}),
                replace_existing=True,
            )
            statuses = {cell.scenario: cell.status for cell in plan(fleet, store, smoke=True)}
            assert statuses == {
                "engine-baseline": "stale-spec",
                "priority-overload": "fresh",
            }
            summary = run_missing(fleet, store, smoke=True)
            assert (summary["ran"], summary["reused"], summary["stale"]) == (1, 1, 1)
        finally:
            register_scenario(original, replace_existing=True)
        # Restoring the original spec restores freshness: the artifact path is
        # stable per cell id, so the stale re-run overwrote in place and the
        # original's recorded entry is simply stale again.
        assert {cell.status for cell in plan(fleet, store, smoke=True)} == {
            "fresh",
            "stale-spec",
        }

    def test_code_fingerprint_mismatch_marks_cells_stale_code(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_missing(tiny_fleet(), store, smoke=True)
        for entry in store.manifest.cells.values():
            entry.fingerprint = "0" * 64
        store.manifest.save()
        reopened = ArtifactStore(tmp_path)
        cells = plan(tiny_fleet(), reopened, smoke=True)
        assert [cell.status for cell in cells] == ["stale-code"]
        summary = run_missing(tiny_fleet(), reopened, smoke=True)
        assert summary["ran"] == 1
        entries = reopened.manifest.cells.values()
        assert all(entry.fingerprint == code_fingerprint() for entry in entries)

    def test_deleted_artifact_counts_as_missing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_missing(tiny_fleet(), store, smoke=True)
        for entry in store.manifest.cells.values():
            store.manifest.artifact_path(entry).unlink()
        cells = plan(tiny_fleet(), store, smoke=True)
        assert [cell.status for cell in cells] == ["missing"]


class TestReport:
    def test_report_fails_loudly_with_fix_command_until_cells_exist(self, tmp_path):
        fleet = tiny_fleet()
        store = ArtifactStore(tmp_path / "artifacts")
        with pytest.raises(FleetError) as excinfo:
            generate_report(fleet, store, tmp_path / "report", smoke=True)
        message = str(excinfo.value)
        assert "exp/engine-baseline#smoke [missing]" in message
        assert fix_command(store.root, smoke=True) in message
        assert not (tmp_path / "report" / "report.md").exists()
        run_missing(fleet, store, smoke=True)
        result = generate_report(fleet, store, tmp_path / "report", smoke=True)
        assert result["cells"] == 1
        report_text = (tmp_path / "report" / "report.md").read_text()
        assert "engine-baseline" in report_text
        assert "no scenario was re-run" in report_text

    def test_report_rows_come_from_artifacts_not_reruns(self, tmp_path):
        fleet = tiny_fleet()
        store = ArtifactStore(tmp_path / "artifacts")
        run_missing(fleet, store, smoke=True)
        # Doctor the stored artifact; the report must reflect the doctored
        # value, proving it never re-ran the scenario.
        (cell,) = plan(fleet, store, smoke=True)
        entry = store.manifest.cells[cell.cell_id]
        payload = json.loads(store.load_cell_json(cell.cell_id))
        payload["load"]["served"] = 424242
        store.manifest.artifact_path(entry).write_text(json.dumps(payload))
        generate_report(fleet, store, tmp_path / "report", smoke=True)
        assert "424242" in (tmp_path / "report" / "report.md").read_text()


class TestFleetCLI:
    def _fleet_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(
            json.dumps({"experiments": [{"name": "exp", "scenarios": ["engine-baseline"]}]})
        )
        return str(path)

    def test_run_missing_then_report_end_to_end(self, tmp_path, capsys):
        fleet = self._fleet_file(tmp_path)
        artifacts = str(tmp_path / "artifacts")
        assert main(["run-missing", "--artifacts", artifacts, "--fleet", fleet, "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "'ran': 1" in out
        assert main(["run-missing", "--artifacts", artifacts, "--fleet", fleet, "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "'ran': 0" in out and "'reused': 1" in out
        assert main(["report", "--artifacts", artifacts, "--fleet", fleet, "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "report.md" in out and "exp.csv" in out

    def test_dry_run_plans_without_running(self, tmp_path, capsys):
        fleet = self._fleet_file(tmp_path)
        artifacts = str(tmp_path / "artifacts")
        code = main(
            ["run-missing", "--artifacts", artifacts, "--fleet", fleet, "--smoke", "--dry-run"]
        )
        assert code == 0
        assert "would-run" in capsys.readouterr().out
        assert not (tmp_path / "artifacts" / "manifest.json").exists()

    def test_report_without_artifacts_exits_nonzero_with_fix_command(self, tmp_path, capsys):
        fleet = self._fleet_file(tmp_path)
        artifacts = str(tmp_path / "artifacts")
        code = main(["report", "--artifacts", artifacts, "--fleet", fleet, "--smoke"])
        assert code == 1
        err = capsys.readouterr().err
        assert "run-missing" in err and "--smoke" in err

    def test_bad_fleet_file_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["run-missing", "--fleet", missing, "--dry-run"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_save_artifact_records_sweep_through_the_store(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        code = main(
            [
                "run-scenario",
                "--name",
                "engine-baseline",
                "--smoke",
                "--save-artifact",
                str(artifacts),
            ]
        )
        assert code == 0
        assert "recorded sweep artifact" in capsys.readouterr().out
        store = ArtifactStore(artifacts)
        (sweep_id,) = store.manifest.sweeps
        assert sweep_id.startswith("run-scenario@")
        relpath = store.manifest.sweeps[sweep_id]["artifact"]
        payload = json.loads((artifacts / relpath).read_text())
        assert payload["kind"] == "sweep"
        assert payload["schema_version"] == 1
        assert payload["params"]["name"] == "engine-baseline"
        assert payload["rows"]
