"""The declarative scenario API: spec validation, round-trips, build, run, sweep."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import QUEUE_DISCIPLINES, SHED_POLICIES
from repro.engine.autoscale import AUTOSCALER_KINDS, Autoscaler
from repro.engine.faults import FAULT_KINDS
from repro.engine.flstore import EngineFLStore
from repro.engine.sharded import ShardedEngineFLStore
from repro.fl.models import MODEL_ZOO
from repro.routing import ROUTER_KINDS
from repro.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    FaultSpec,
    RemediationSpec,
    ScenarioSpec,
    ScenarioValidationError,
    TierSpec,
    WorkloadMixSpec,
    apply_overrides,
    build_tier,
    expand_axes,
    get_scenario,
    list_scenarios,
    register_scenario,
    run,
    smoke_spec,
    sweep,
)
from repro.traces.arrivals import ARRIVAL_KINDS
from repro.workloads.registry import list_workloads


def _tiny_spec(**overrides) -> ScenarioSpec:
    """A laptop-instant spec: few rounds, few requests, defaults elsewhere."""
    spec = ScenarioSpec(
        name="tiny",
        num_rounds=3,
        workload=WorkloadMixSpec(num_requests=8),
    )
    return spec.with_overrides(overrides) if overrides else spec


# ---------------------------------------------------------------------------
# Central knob validation — every invalid string fails at spec build time
# ---------------------------------------------------------------------------


class TestValidation:
    @pytest.mark.parametrize(
        "override",
        [
            {"tier.admission.shed_policy": "toss"},
            {"tier.admission.max_queue_depth": -1},
            {"tier.queue_discipline": "lifo"},
            {"tier.router_kind": "rendezvous"},
            {"tier.autoscaler.policy": "magic"},
            {"tier.autoscaler.control_interval_seconds": 0},
            {"arrival.kind": "weekly"},
            {"arrival.utilization": 0},
            {"workload.workloads": "inference,not_a_workload"},
            {"workload.num_requests": 0},
            {"model": "gpt-17"},
            {"num_rounds": 0},
            {"slo_multiplier": -1},
            {"mean_service_seconds": 0},
            {"tier.shards": "2.5"},
            {"remediation.enabled": True},  # plain tier: nothing to actuate
            {"remediation.control_interval_seconds": 0},
            {"remediation.cooldown_seconds": -1},
            {"remediation.max_actions": -1},
            {"remediation.shadow_rounds": 0},
            {"remediation.shadow_requests": 0},
        ],
    )
    def test_invalid_knobs_raise_scenario_validation_error(self, override):
        with pytest.raises(ScenarioValidationError):
            apply_overrides(ScenarioSpec(), override)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "quake"},
            {"onset_seconds": -1.0},
            {"duration_seconds": -1.0},
            {"magnitude": 0.0},
            {"interval_seconds": 0.0},
            {"zipf_exponent": 1.0},
            {"kind": "slow-shard", "duration_seconds": 0.0},
            {"kind": "reclamation-storm", "duration_seconds": 0.0},
            {"kind": "network-spike", "duration_seconds": 0.0},
        ],
    )
    def test_invalid_fault_clauses_rejected(self, kwargs):
        with pytest.raises(ScenarioValidationError):
            FaultSpec(**kwargs)

    def test_shard_crash_requires_a_survivable_ring(self):
        crash = FaultSpec(kind="shard-crash", magnitude=1.0)
        # A plain (or single-shard) tier has no shard to lose.
        with pytest.raises(ScenarioValidationError, match="sharded tier"):
            ScenarioSpec(faults=(crash,))
        # Crashing every shard would crash the last one.
        with pytest.raises(ScenarioValidationError, match="last"):
            ScenarioSpec(
                tier=TierSpec(shards=2, router_kind="jsq"),
                faults=(FaultSpec(kind="shard-crash", magnitude=2.0),),
            )

    def test_remediation_and_autoscaler_are_mutually_exclusive(self):
        with pytest.raises(ScenarioValidationError, match="control loops"):
            ScenarioSpec(
                tier=TierSpec(
                    shards=2,
                    router_kind="jsq",
                    autoscaler=AutoscalerSpec(enabled=True),
                ),
                remediation=RemediationSpec(enabled=True),
            )

    def test_multi_shard_tier_requires_router(self):
        with pytest.raises(ScenarioValidationError, match="needs a router"):
            TierSpec(shards=4)

    def test_autoscaled_tier_requires_router(self):
        with pytest.raises(ScenarioValidationError, match="must be sharded"):
            TierSpec(autoscaler=AutoscalerSpec(enabled=True))

    def test_unknown_dict_keys_rejected_at_every_level(self):
        good = ScenarioSpec().to_dict()
        for path in ((), ("tier",), ("tier", "admission"), ("workload",), ("arrival",)):
            tree = ScenarioSpec().to_dict()
            node = tree
            for part in path:
                node = node[part]
            node["no_such_knob"] = 1
            with pytest.raises(ScenarioValidationError, match="no_such_knob"):
                ScenarioSpec.from_dict(tree)
        assert ScenarioSpec.from_dict(good) == ScenarioSpec()

    def test_missing_keys_take_defaults(self):
        assert ScenarioSpec.from_dict({}) == ScenarioSpec()
        assert ScenarioSpec.from_dict({"tier": {"shards": 1}}) == ScenarioSpec()

    def test_workloads_accept_comma_string(self):
        spec = WorkloadMixSpec(workloads="inference, clustering")
        assert spec.workloads == ("inference", "clustering")

    def test_validation_error_is_a_configuration_error(self):
        from repro.common.errors import ConfigurationError

        assert issubclass(ScenarioValidationError, ConfigurationError)


# ---------------------------------------------------------------------------
# Round-trips: dict / JSON / TOML (hypothesis over the whole valid spec space)
# ---------------------------------------------------------------------------


_names = st.text(alphabet=string.ascii_lowercase + string.digits + "-_. ", min_size=1)
_small_floats = st.floats(min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False)


@st.composite
def fault_specs(draw, shards: int) -> FaultSpec:
    kinds = FAULT_KINDS if shards >= 2 else tuple(k for k in FAULT_KINDS if k != "shard-crash")
    kind = draw(st.sampled_from(kinds))
    if kind == "shard-crash":
        magnitude = float(draw(st.integers(1, shards - 1)))
    else:
        magnitude = draw(_small_floats)
    return FaultSpec(
        kind=kind,
        onset_seconds=draw(_small_floats),
        duration_seconds=draw(_small_floats),
        magnitude=magnitude,
        interval_seconds=draw(_small_floats),
        zipf_exponent=draw(
            st.floats(min_value=1.01, max_value=10.0, allow_nan=False, allow_infinity=False)
        ),
    )


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    router_kind = draw(st.sampled_from((None,) + ROUTER_KINDS))
    shards = 1 if router_kind is None else draw(st.integers(1, 8))
    autoscaler = AutoscalerSpec(
        enabled=router_kind is not None and draw(st.booleans()),
        policy=draw(st.sampled_from(AUTOSCALER_KINDS)),
        control_interval_seconds=draw(_small_floats),
    )
    faults = tuple(draw(st.lists(fault_specs(shards=shards), max_size=3)))
    remediation = RemediationSpec(
        enabled=router_kind is not None and not autoscaler.enabled and draw(st.booleans()),
        control_interval_seconds=draw(_small_floats),
        cooldown_seconds=draw(_small_floats),
        max_actions=draw(st.integers(0, 8)),
        shadow_rounds=draw(st.integers(1, 8)),
        shadow_requests=draw(st.integers(1, 64)),
    )
    workloads = tuple(
        draw(
            st.lists(
                st.sampled_from(sorted(list_workloads())), min_size=1, max_size=4, unique=True
            )
        )
    )
    return ScenarioSpec(
        name=draw(_names),
        model=draw(st.sampled_from(sorted(MODEL_ZOO))),
        seed=draw(st.integers(0, 2**31)),
        num_rounds=draw(st.integers(1, 64)),
        workload=WorkloadMixSpec(workloads=workloads, num_requests=draw(st.integers(1, 512))),
        arrival=ArrivalSpec(
            kind=draw(st.sampled_from(ARRIVAL_KINDS)),
            utilization=draw(_small_floats),
            rate_rps=draw(st.one_of(st.none(), _small_floats)),
        ),
        tier=TierSpec(
            shards=shards,
            router_kind=router_kind,
            function_concurrency=draw(st.integers(1, 4)),
            queue_discipline=draw(st.sampled_from(QUEUE_DISCIPLINES)),
            admission=AdmissionSpec(
                max_queue_depth=draw(st.integers(0, 64)),
                shed_policy=draw(st.sampled_from(SHED_POLICIES)),
            ),
            autoscaler=autoscaler,
        ),
        slo_multiplier=draw(st.one_of(st.just(0.0), _small_floats)),
        mean_service_seconds=draw(st.one_of(st.none(), _small_floats)),
        faults=faults,
        remediation=remediation,
    )


class TestRoundTrips:
    @given(scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @given(scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip(self, spec):
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @given(scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_toml_round_trip(self, spec):
        assert ScenarioSpec.from_toml(spec.to_toml()) == spec

    def test_file_round_trip_both_formats(self, tmp_path):
        spec = get_scenario("sharded-burst")
        for suffix in (".json", ".toml"):
            path = spec.save(tmp_path / f"spec{suffix}")
            assert ScenarioSpec.load(path) == spec

    def test_unsupported_suffix_and_missing_file_rejected(self, tmp_path):
        with pytest.raises(ScenarioValidationError):
            ScenarioSpec().save(tmp_path / "spec.yaml")
        with pytest.raises(ScenarioValidationError):
            ScenarioSpec.load(tmp_path / "missing.json")

    def test_malformed_documents_rejected(self):
        with pytest.raises(ScenarioValidationError):
            ScenarioSpec.from_json("{not json")
        with pytest.raises(ScenarioValidationError):
            ScenarioSpec.from_toml("= broken")

    def test_fault_clauses_emit_as_toml_arrays_of_tables(self):
        spec = get_scenario("fault-recovery")
        document = spec.to_toml()
        assert "[[faults]]" in document
        assert ScenarioSpec.from_toml(document) == spec
        # An empty clause list is dropped from the document and defaulted on
        # the way back in.
        bare = spec.with_overrides({"faults": []})
        assert "faults" not in bare.to_toml()
        assert ScenarioSpec.from_toml(bare.to_toml()) == bare

    def test_faults_must_be_a_sequence_of_tables(self):
        with pytest.raises(ScenarioValidationError, match="array of tables"):
            ScenarioSpec.from_dict({"faults": {"kind": "slow-shard"}})


# ---------------------------------------------------------------------------
# Dotted-path overrides (the --set / sweep-axis surface)
# ---------------------------------------------------------------------------


class TestOverrides:
    def test_string_values_coerce_to_field_types(self):
        spec = apply_overrides(
            ScenarioSpec(),
            {
                "tier.shards": "4",
                "tier.router_kind": "jsq",
                "tier.admission.max_queue_depth": "6",
                "tier.autoscaler.enabled": "true",
                "tier.autoscaler.policy": "none",
                "arrival.utilization": "2.5",
                "workload.workloads": "inference,clustering",
                "mean_service_seconds": "0.25",
            },
        )
        assert spec.tier.shards == 4
        assert spec.tier.router_kind == "jsq"
        assert spec.tier.admission.max_queue_depth == 6
        assert spec.tier.autoscaler.enabled is True
        # "none" stays a string on string-valued fields: it names a policy.
        assert spec.tier.autoscaler.policy == "none"
        assert spec.arrival.utilization == 2.5
        assert spec.workload.workloads == ("inference", "clustering")
        assert spec.mean_service_seconds == 0.25

    def test_null_clears_optional_fields(self):
        spec = apply_overrides(
            get_scenario("sharded-burst"),
            {"tier.router_kind": "null", "tier.shards": 1},
        )
        assert spec.tier.router_kind is None

    def test_unknown_paths_rejected(self):
        for key in ("tier.bogus", "bogus", "tier.admission.bogus", "tier", "tier.admission"):
            with pytest.raises(ScenarioValidationError, match="unknown scenario field"):
                apply_overrides(ScenarioSpec(), {key: 1})

    def test_overrides_do_not_mutate_the_original(self):
        original = ScenarioSpec()
        apply_overrides(original, {"tier.shards": 4, "tier.router_kind": "modulo"})
        assert original.tier.shards == 1


# ---------------------------------------------------------------------------
# build_tier — one factory, every topology
# ---------------------------------------------------------------------------


class TestBuildTier:
    def test_plain_topology_builds_engine(self):
        tier = build_tier(_tiny_spec())
        assert isinstance(tier.store, EngineFLStore)
        assert tier.autoscaler is None
        assert not tier.sharded
        assert tier.mean_service_seconds > 0

    def test_sharded_topology_builds_front_door(self):
        tier = build_tier(_tiny_spec(**{"tier.shards": 3, "tier.router_kind": "modulo"}))
        assert isinstance(tier.store, ShardedEngineFLStore)
        assert tier.store.num_shards == 3
        assert tier.store.router.kind == "modulo"
        assert tier.autoscaler is None

    def test_autoscaled_topology_attaches_control_loop(self):
        tier = build_tier(
            _tiny_spec(
                **{
                    "tier.router_kind": "consistent-hash",
                    "tier.autoscaler.enabled": "true",
                    "tier.autoscaler.policy": "reactive",
                }
            )
        )
        assert isinstance(tier.store, ShardedEngineFLStore)
        assert isinstance(tier.autoscaler, Autoscaler)
        assert tier.autoscaler.policy.name == "reactive"
        # The resizable tier can actually scale out (factory + warm rounds).
        assert tier.store._shard_factory is not None

    def test_tier_knobs_reach_the_serverless_config(self):
        tier = build_tier(
            _tiny_spec(
                **{
                    "tier.admission.max_queue_depth": 5,
                    "tier.admission.shed_policy": "degrade-to-objstore",
                    "tier.function_concurrency": 2,
                    "tier.queue_discipline": "priority",
                }
            )
        )
        serverless = tier.config.serverless
        assert serverless.max_queue_depth == 5
        assert serverless.shed_policy == "degrade-to-objstore"
        assert serverless.function_concurrency == 2
        assert serverless.queue_discipline == "priority"
        assert tier.store.max_queue_depth == 5


# ---------------------------------------------------------------------------
# run — typed report, conservation, determinism
# ---------------------------------------------------------------------------


class TestRun:
    def test_run_is_deterministic(self):
        first = run(_tiny_spec())
        second = run(_tiny_spec())
        assert first.row() == second.row()

    def test_report_carries_conservation_and_context(self):
        report = run(_tiny_spec(**{"tier.shards": 2, "tier.router_kind": "consistent-hash"}))
        assert report.conserved is True
        assert report.load.submitted == 8
        assert report.max_shard_routed is not None
        row = report.row()
        assert row["scenario"] == "tiny"
        assert row["shards"] == 2
        assert row["router"] == "consistent-hash"
        assert row["served"] + row["shed"] + row["degraded"] == 8

    def test_plain_report_has_no_shard_columns(self):
        row = run(_tiny_spec()).row()
        assert "max_shard_routed" not in row
        assert "router" not in row

    def test_explicit_rate_bypasses_utilization(self):
        report = run(_tiny_spec(**{"arrival.rate_rps": 2.0}))
        assert report.offered_rate_rps == 2.0

    def test_autoscaled_run_reports_summary(self):
        report = run(
            smoke_spec(get_scenario("autoscale-diurnal"), num_rounds=3, num_requests=10)
        )
        assert report.autoscale is not None
        row = report.row()
        assert row["autoscaler"] == "predictive"
        assert "capacity_unit_seconds" in row and "warm_capacity_cost_dollars" in row

    def test_serialized_report_carries_schema_version(self):
        from repro.scenario.build import RUN_REPORT_SCHEMA_VERSION, RunReport

        report = run(_tiny_spec())
        data = report.to_dict()
        assert data["schema_version"] == RUN_REPORT_SCHEMA_VERSION
        assert RunReport.from_dict(data).to_dict() == data

    def test_loading_tolerates_unknown_keys_from_a_future_schema(self):
        from repro.scenario.build import RunReport

        report = run(_tiny_spec())
        data = report.to_dict()
        data["schema_version"] = 99
        data["a_future_section"] = {"metric": 1.0}
        data["load"]["a_future_load_metric"] = 2.5
        restored = RunReport.from_dict(data)
        assert restored.conserved == report.conserved
        assert restored.load.served == report.load.served
        # Re-serializing drops the unknown keys and restamps the version.
        assert restored.to_dict() == report.to_dict()


# ---------------------------------------------------------------------------
# sweep — the generic grid
# ---------------------------------------------------------------------------


class TestSweep:
    def test_axis_order_is_row_order(self):
        specs = expand_axes(
            ScenarioSpec(),
            {"arrival.kind": ("poisson", "bursty"), "arrival.utilization": (0.5, 1.0)},
        )
        combos = [(s.arrival.kind, s.arrival.utilization) for s in specs]
        assert combos == [("poisson", 0.5), ("poisson", 1.0), ("bursty", 0.5), ("bursty", 1.0)]

    def test_empty_axes_is_a_single_cell(self):
        assert expand_axes(ScenarioSpec(), {}) == [ScenarioSpec()]

    def test_bad_axis_values_rejected(self):
        with pytest.raises(ValueError):
            expand_axes(ScenarioSpec(), {"arrival.kind": ()})
        with pytest.raises(TypeError):
            expand_axes(ScenarioSpec(), {"arrival.kind": "poisson"})

    def test_sweep_pins_one_calibration_across_cells(self):
        rows = sweep(_tiny_spec(), {"arrival.utilization": (0.5, 2.0)})
        assert len(rows) == 2
        assert [row["utilization"] for row in rows] == [0.5, 2.0]
        # Both cells share one calibration, hence one SLO: the violation
        # rates are comparable across the grid.
        assert all(row["conserved"] for row in rows)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_bundled_scenarios_cover_every_topology(self):
        names = list_scenarios()
        topologies = set()
        for name in names:
            tier = get_scenario(name).tier
            if not tier.sharded:
                topologies.add("engine")
            elif tier.autoscaler.enabled:
                topologies.add("autoscaled")
            else:
                topologies.add("sharded")
        assert topologies == {"engine", "sharded", "autoscaled"}

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("engine-baseline")
        with pytest.raises(ValueError):
            register_scenario(spec)
        # Explicit replacement is allowed (and idempotent here).
        assert register_scenario(spec, replace_existing=True) == spec

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="engine-baseline"):
            get_scenario("nope")

    def test_smoke_spec_shrinks_without_touching_topology(self):
        spec = get_scenario("sharded-burst")
        smoke = smoke_spec(spec)
        assert smoke.num_rounds <= 4 and smoke.workload.num_requests <= 12
        assert smoke.tier == spec.tier
        assert smoke.arrival == spec.arrival
