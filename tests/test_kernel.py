"""Kernel scheduler contract: boundary semantics and heap equivalence.

Two guarantees pin the calendar-queue scheduler so it can never silently
drift from the original single-heap implementation:

* ``run(until=...)`` boundary semantics — events at exactly ``until`` fire,
  strictly later ones stay queued, and the clock lands exactly on ``until``
  (for calendar entries and ``schedule_many`` stream tails alike).
* Total-order equivalence — a hypothesis property drives random
  ``schedule`` / ``schedule_at`` / ``schedule_many`` / nested-action
  interleavings through the production :class:`EventLoop` and a reference
  ``(time, seq)`` heap, asserting identical firing order, ``events_fired``
  and ``pending()`` at every checkpoint.
"""

from __future__ import annotations

import heapq
from itertools import count

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.kernel import EventLoop


class ReferenceLoop:
    """The pre-calendar-queue event loop: one binary ``(time, seq)`` heap.

    Kept verbatim as the executable specification of event ordering.
    ``schedule_many`` is emulated as N individual pushes in array order,
    which is exactly the contract the stream fast path must honour.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self._heap: list[tuple[float, int, object]] = []
        self._seq = count()
        self.events_fired = 0

    def schedule_at(self, when, action):
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        heapq.heappush(self._heap, (float(when), next(self._seq), action))

    def schedule(self, delay, action):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, action)

    def schedule_many(self, times, action):
        for index, when in enumerate(times):
            self.schedule_at(float(when), lambda index=index: action(index))

    def pending(self):
        return len(self._heap)

    def run(self, until=None):
        heap = self._heap
        while heap:
            when, _, action = heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(heap)
            self.now = when
            self.events_fired += 1
            action()
        if until is not None and until > self.now:
            self.now = until
        return self.now


class TestRunUntilTieSemantics:
    """`run(until=...)`: the boundary is inclusive, later events stay queued."""

    def test_events_exactly_at_until_fire_and_later_ones_stay(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, lambda: fired.append("early"))
        loop.schedule_at(2.0, lambda: fired.append("boundary-first"))
        loop.schedule_at(2.0, lambda: fired.append("boundary-second"))
        loop.schedule_at(2.0 + 1e-9, lambda: fired.append("later"))

        assert loop.run(until=2.0) == 2.0
        assert fired == ["early", "boundary-first", "boundary-second"]
        assert loop.now == 2.0
        assert loop.pending() == 1
        assert loop.events_fired == 3

        loop.run()
        assert fired[-1] == "later"
        assert loop.pending() == 0

    def test_stream_events_honor_the_same_boundary(self):
        loop = EventLoop()
        fired = []
        loop.schedule_many([1.0, 2.0, 2.5], lambda i: fired.append(i))

        assert loop.run(until=2.0) == 2.0
        assert fired == [0, 1]
        assert loop.pending() == 1

        loop.run()
        assert fired == [0, 1, 2]
        assert loop.pending() == 0

    def test_boundary_event_chaining_a_zero_delay_child_fires_it_too(self):
        # An event at exactly `until` that schedules a zero-delay follow-up
        # keeps the follow-up inside the window: it lands at the same
        # timestamp, which is not strictly later than `until`.
        loop = EventLoop()
        fired = []
        loop.schedule_at(2.0, lambda: loop.schedule(0.0, lambda: fired.append("child")))
        loop.run(until=2.0)
        assert fired == ["child"]

    def test_run_until_with_empty_schedule_still_advances_the_clock(self):
        loop = EventLoop()
        assert loop.run(until=5.0) == 5.0
        assert loop.now == 5.0


class TestScheduleMany:
    def test_rejects_times_in_the_past(self):
        loop = EventLoop()
        loop.schedule_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError, match="past"):
            loop.schedule_many([0.5, 2.0], lambda i: None)

    def test_rejects_decreasing_times(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match="non-decreasing"):
            loop.schedule_many([1.0, 0.5], lambda i: None)

    def test_rejects_multidimensional_input(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match="one-dimensional"):
            loop.schedule_many([[1.0, 2.0]], lambda i: None)

    def test_empty_block_is_a_no_op(self):
        loop = EventLoop()
        loop.schedule_many([], lambda i: None)
        assert loop.pending() == 0
        assert loop.run() == 0.0

    def test_streams_merge_with_individual_events_by_time_then_seq(self):
        loop = EventLoop()
        fired = []
        loop.schedule_many([1.0, 2.0, 2.0], lambda i: fired.append(("stream", i)))
        # Scheduled after the block, so at equal timestamps it fires later.
        loop.schedule_at(2.0, lambda: fired.append(("single", 0)))
        loop.schedule_at(0.5, lambda: fired.append(("single", 1)))
        loop.run()
        assert fired == [
            ("single", 1),
            ("stream", 0),
            ("stream", 1),
            ("stream", 2),
            ("single", 0),
        ]


# ---------------------------------------------------------------------------
# Hypothesis: the calendar queue is indistinguishable from the reference heap.
# ---------------------------------------------------------------------------

# A coarse time grid forces plenty of exact ties, which is where ordering
# bugs hide; spans larger than the initial calendar window force rollovers.
_grid_time = st.integers(min_value=0, max_value=600).map(lambda i: i * 0.25)
_child_delay = st.integers(min_value=0, max_value=12).map(lambda i: i * 0.25)

# ("one", time, [(delay, [(delay, [])...])...]) — an event that fires at
# `time` and schedules nested children relative to its own firing instant.
_children = st.lists(
    st.tuples(_child_delay, st.lists(st.tuples(_child_delay, st.just([])), max_size=2)),
    max_size=3,
)
_one = st.tuples(st.just("one"), _grid_time, _children)

# ("many", sorted times, spawn_flag) — a schedule_many block; with
# spawn_flag set, every third firing schedules an extra nested event, so
# streams interleave with calendar entries mid-run.
_many = st.tuples(
    st.just("many"),
    st.lists(_grid_time, min_size=1, max_size=12).map(sorted),
    st.booleans(),
)

_program = st.lists(st.one_of(_one, _many), min_size=1, max_size=12)
_checkpoints = st.lists(_grid_time, max_size=3).map(sorted)


def _drive(loop, program):
    """Execute `program` against `loop`; return the firing log."""
    log = []

    def make_action(tag, children):
        def action():
            log.append((tag, loop.now))
            for delay, grandchildren in children:
                loop.schedule(delay, make_action((tag, "child", delay), grandchildren))

        return action

    for position, item in enumerate(program):
        if item[0] == "one":
            _, when, children = item
            loop.schedule_at(when, make_action(("one", position), children))
        else:
            _, times, spawn = item

            def fire(index, position=position, spawn=spawn):
                log.append((("many", position, index), loop.now))
                if spawn and index % 3 == 0:
                    loop.schedule(0.5, make_action(("many", position, index, "child"), []))

            loop.schedule_many(times, fire)
    return log


@settings(max_examples=200, deadline=None)
@given(program=_program, checkpoints=_checkpoints)
def test_calendar_queue_matches_reference_heap(program, checkpoints):
    loops = (EventLoop(), ReferenceLoop())
    logs = []
    snapshots = []
    for loop in loops:
        log = _drive(loop, program)
        snaps = []
        for until in checkpoints:
            now = loop.run(until=until)
            snaps.append((now, loop.events_fired, loop.pending()))
        final = loop.run()
        snaps.append((final, loop.events_fired, loop.pending()))
        logs.append(log)
        snapshots.append(snaps)

    assert logs[0] == logs[1], "firing order diverged from the reference heap"
    assert snapshots[0] == snapshots[1]
    assert loops[0].pending() == 0
