"""Fault injection: clauses, scheduled events, and recovery metrics."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.engine import (
    EngineFLStore,
    FaultClause,
    FaultPlan,
    ShardedEngineFLStore,
    compute_recovery_metrics,
)
from repro.fl.trainer import FLJobSimulator
from repro.traces.generator import RequestTraceGenerator


@pytest.fixture(scope="module")
def fault_config():
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="module")
def fault_rounds(fault_config):
    return FLJobSimulator(fault_config).run_rounds(8)


def _tier(config, rounds, shards=2, **kwargs):
    tier = ShardedEngineFLStore.build(shards, config=config, **kwargs)
    for record in rounds:
        tier.ingest_round(record)
    return tier


def _engine(config, rounds):
    flstore = build_default_flstore(config)
    for record in rounds:
        flstore.ingest_round(record)
    return EngineFLStore(flstore)


def _trace(tier, count, spacing=0.5, seed=3):
    generator = RequestTraceGenerator(tier.catalog, seed=seed)
    trace = generator.mixed_trace(["inference", "clustering", "scheduling_perf"], count)
    return trace, [spacing * i for i in range(count)]


# ---------------------------------------------------------------------------
# Clause validation
# ---------------------------------------------------------------------------


class TestFaultClause:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "quake", "onset_seconds": 0.0},
            {"kind": "shard-crash", "onset_seconds": -1.0},
            {"kind": "shard-crash", "onset_seconds": 0.0, "duration_seconds": -1.0},
            {"kind": "shard-crash", "onset_seconds": 0.0, "magnitude": 0.0},
            {
                "kind": "reclamation-storm",
                "onset_seconds": 0.0,
                "duration_seconds": 10.0,
                "interval_seconds": 0.0,
            },
            {
                "kind": "reclamation-storm",
                "onset_seconds": 0.0,
                "duration_seconds": 10.0,
                "zipf_exponent": 1.0,
            },
            {"kind": "slow-shard", "onset_seconds": 0.0, "duration_seconds": 0.0},
            {"kind": "network-spike", "onset_seconds": 0.0, "duration_seconds": 0.0},
            {"kind": "reclamation-storm", "onset_seconds": 0.0, "duration_seconds": 0.0},
        ],
    )
    def test_invalid_clauses_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultClause(**kwargs)

    def test_crash_clause_needs_a_sharded_tier(self, fault_config, fault_rounds):
        engine = _engine(fault_config, fault_rounds)
        with pytest.raises(ConfigurationError, match="sharded tier"):
            FaultPlan(engine, [FaultClause(kind="shard-crash", onset_seconds=1.0)])

    def test_plan_drives_exactly_one_run(self, fault_config, fault_rounds):
        tier = _tier(fault_config, fault_rounds)
        plan = FaultPlan(tier, [FaultClause(kind="shard-crash", onset_seconds=1.0)])
        plan.start()
        with pytest.raises(RuntimeError):
            plan.start()


# ---------------------------------------------------------------------------
# Injection through the serving tier
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_crash_mid_run_conserves_and_records_sim_time(self, fault_config, fault_rounds):
        tier = _tier(fault_config, fault_rounds, shards=2, max_queue_depth=0)
        trace, arrivals = _trace(tier, 30)
        plan = FaultPlan(tier, [FaultClause(kind="shard-crash", onset_seconds=3.0)], seed=7)
        report = tier.run_open_loop(trace, arrivals, fault_plan=plan)
        assert tier.num_shards == 1
        assert report.served + report.degraded + report.shed == report.submitted
        assert len(plan.records) == 1
        record = plan.records[0]
        # The event carries the virtual time it actually fired at.
        assert record.time == pytest.approx(3.0)
        assert record.kind == "shard-crash"
        summary = plan.summary()
        assert summary["fault_clauses"] == 1
        assert summary["fault_events_by_kind"] == {"shard-crash": 1}

    def test_crashing_the_last_shard_raises(self, fault_config, fault_rounds):
        tier = _tier(fault_config, fault_rounds, shards=1)
        with pytest.raises(ConfigurationError):
            tier.crash_shard()

    def test_storm_reclaims_warm_functions_on_every_shard(self, fault_config, fault_rounds):
        tier = _tier(fault_config, fault_rounds, shards=2)
        trace, arrivals = _trace(tier, 40)
        clause = FaultClause(
            kind="reclamation-storm",
            onset_seconds=2.0,
            duration_seconds=10.0,
            interval_seconds=4.0,
            magnitude=2.0,
        )
        plan = FaultPlan(tier, [clause], seed=7)
        report = tier.run_open_loop(trace, arrivals, fault_plan=plan)
        assert report.served + report.degraded + report.shed == report.submitted
        # Bursts at t=2, 6, 10 (interval 4 inside a [2, 12] window).
        assert [r.time for r in plan.records] == pytest.approx([2.0, 6.0, 10.0])
        assert all("reclaimed" in r.detail for r in plan.records)

    def test_storm_streams_are_derived_per_clause(self, fault_config, fault_rounds):
        """Clause RNG streams derive from (seed, kind, index): the same run
        twice is identical, and appending a later clause leaves the first
        clause's draws untouched."""
        clause = FaultClause(
            kind="reclamation-storm", onset_seconds=2.0, duration_seconds=8.0,
            interval_seconds=3.0,
        )
        extra = FaultClause(kind="slow-shard", onset_seconds=50.0, duration_seconds=5.0)

        def storm_details(clauses):
            tier = _tier(fault_config, fault_rounds, shards=2)
            trace, arrivals = _trace(tier, 30)
            plan = FaultPlan(tier, clauses, seed=7)
            tier.run_open_loop(trace, arrivals, fault_plan=plan)
            return [r.detail for r in plan.records if r.kind == "reclamation-storm"]

        assert storm_details([clause]) == storm_details([clause])
        assert storm_details([clause]) == storm_details([clause, extra])

    def test_slow_shard_degrades_then_heals(self, fault_config, fault_rounds):
        tier = _tier(fault_config, fault_rounds, shards=2)
        trace, arrivals = _trace(tier, 30)
        # The window must cover execution *starts* (the multiplier is read
        # when a slot is acquired), so it spans the whole arrival ramp.
        clause = FaultClause(
            kind="slow-shard", onset_seconds=0.0, duration_seconds=30.0, magnitude=4.0
        )
        plan = FaultPlan(tier, [clause], seed=7)
        report = tier.run_open_loop(trace, arrivals, fault_plan=plan)
        assert report.served + report.degraded + report.shed == report.submitted
        # The multiplier is gone by end of run (the heal event fired) ...
        assert all(s.service_time_multiplier == 1.0 for s in tier.active_shards)
        details = [r.detail for r in plan.records]
        assert any("service time x4" in d for d in details)
        assert "slow shard healed" in details
        # ... and the slowdown showed up in sojourn times, not in errors.
        healthy_tier = _tier(fault_config, fault_rounds, shards=2)
        healthy = healthy_tier.run_open_loop(*_trace(healthy_tier, 30))
        assert report.mean_sojourn_seconds > healthy.mean_sojourn_seconds

    def test_network_spike_raises_latency_then_clears(self, fault_config, fault_rounds):
        tier = _tier(fault_config, fault_rounds, shards=2)
        trace, arrivals = _trace(tier, 30)
        clause = FaultClause(
            kind="network-spike", onset_seconds=0.0, duration_seconds=30.0, magnitude=5.0
        )
        plan = FaultPlan(tier, [clause], seed=7)
        report = tier.run_open_loop(trace, arrivals, fault_plan=plan)
        assert report.served + report.degraded + report.shed == report.submitted
        assert all(s.network_fault_multiplier == 1.0 for s in tier.active_shards)
        details = [r.detail for r in plan.records]
        assert any("network x5" in d for d in details)
        assert "network spike cleared" in details
        healthy_tier = _tier(fault_config, fault_rounds, shards=2)
        healthy = healthy_tier.run_open_loop(*_trace(healthy_tier, 30))
        assert report.mean_sojourn_seconds > healthy.mean_sojourn_seconds

    def test_plain_engine_takes_storm_and_spike(self, fault_config, fault_rounds):
        engine = _engine(fault_config, fault_rounds)
        generator = RequestTraceGenerator(engine.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering"], 20)
        arrivals = [0.5 * i for i in range(len(trace))]
        clauses = [
            FaultClause(
                kind="reclamation-storm", onset_seconds=1.0, duration_seconds=4.0,
                interval_seconds=2.0,
            ),
            FaultClause(
                kind="network-spike", onset_seconds=1.0, duration_seconds=4.0, magnitude=3.0
            ),
        ]
        plan = FaultPlan(engine, clauses, seed=7)
        report = engine.run_open_loop(trace, arrivals, fault_plan=plan)
        assert report.served + report.degraded + report.shed == report.submitted
        assert plan.summary()["fault_events"] >= 3


# ---------------------------------------------------------------------------
# Recovery metrics
# ---------------------------------------------------------------------------


def _outcomes(completed_times, arrived_offset=0.5):
    return [
        SimpleNamespace(
            arrived_at=max(0.0, t - arrived_offset), completed_at=t, disposition="served"
        )
        for t in completed_times
    ]


class TestRecoveryMetrics:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            compute_recovery_metrics([], 0.0, 10.0, window_seconds=0.0)
        with pytest.raises(ConfigurationError):
            compute_recovery_metrics([], 0.0, 10.0, recovery_fraction=0.0)
        with pytest.raises(ConfigurationError):
            compute_recovery_metrics([], 0.0, 10.0, recovery_fraction=1.5)

    def test_steady_service_recovers_with_zero_dip(self):
        outcomes = _outcomes([0.5 + i for i in range(30)])  # 1 rps throughout
        metrics = compute_recovery_metrics(
            outcomes, onset_seconds=0.0, end_seconds=30.0, baseline_goodput_rps=1.0
        )
        assert metrics.goodput_dip_area == pytest.approx(0.0)
        assert metrics.recovered is True
        # Only the initial cumulative ramp counts against the clock.
        assert metrics.time_to_recovery_seconds < 10.0

    def test_total_outage_never_recovers(self):
        outcomes = _outcomes([0.5 + i for i in range(10)])  # served only before onset
        metrics = compute_recovery_metrics(
            outcomes, onset_seconds=10.0, end_seconds=40.0, baseline_goodput_rps=1.0
        )
        assert metrics.recovered is False
        assert metrics.time_to_recovery_seconds == pytest.approx(30.0)
        assert metrics.goodput_dip_area == pytest.approx(30.0)  # 1 rps x 30 s destroyed

    def test_gap_then_catchup_sets_the_clock_at_the_catchup_point(self):
        # 1 rps, a [10, 20) outage, then 2 rps catch-up until fully caught up.
        times = [0.5 + i for i in range(10)]
        times += [20.0 + 0.5 * i for i in range(20)]
        metrics = compute_recovery_metrics(
            _outcomes(times), onset_seconds=10.0, end_seconds=30.0, baseline_goodput_rps=1.0
        )
        assert metrics.recovered is True
        # Behind until well after service resumes at t=20 (10 s after onset).
        assert 10.0 < metrics.time_to_recovery_seconds < 20.0
        # The dip area is the outage decade's worth of requests.
        assert metrics.goodput_dip_area == pytest.approx(10.0)

    def test_explicit_baseline_overrides_the_pre_onset_estimate(self):
        outcomes = _outcomes([0.5 + i for i in range(30)])
        estimated = compute_recovery_metrics(outcomes, onset_seconds=10.0, end_seconds=30.0)
        pinned = compute_recovery_metrics(
            outcomes, onset_seconds=10.0, end_seconds=30.0, baseline_goodput_rps=2.0
        )
        assert estimated.baseline_goodput_rps == pytest.approx(1.0)
        assert pinned.baseline_goodput_rps == 2.0
        # A doubled baseline means the steady 1 rps stream never catches up.
        assert pinned.recovered is False

    def test_metrics_are_deterministic(self):
        times = [0.5 + i for i in range(10)] + [20.0 + 0.5 * i for i in range(20)]
        first = compute_recovery_metrics(
            _outcomes(times), onset_seconds=10.0, end_seconds=30.0, baseline_goodput_rps=1.0
        )
        second = compute_recovery_metrics(
            _outcomes(times), onset_seconds=10.0, end_seconds=30.0, baseline_goodput_rps=1.0
        )
        assert first == second
