"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import derive_rng
from repro.common.units import bytes_to_mb, mb_to_bytes
from repro.core.policies.traditional import FIFOPolicy, LFUPolicy, LRUPolicy
from repro.fl.aggregation import coordinate_median, fedavg, trimmed_mean
from repro.fl.keys import DataKey
from repro.fl.models import ModelUpdate, get_model_spec
from repro.network.model import NetworkLink
from repro.simulation.records import CostBreakdown, LatencyBreakdown
from repro.workloads.cosine_similarity import pairwise_cosine
from repro.workloads.clustering import kmeans

finite_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------------
# Latency / cost records form a commutative monoid under addition
# --------------------------------------------------------------------------


@st.composite
def latency_breakdowns(draw):
    return LatencyBreakdown(
        communication_seconds=draw(finite_floats),
        computation_seconds=draw(finite_floats),
        queueing_seconds=draw(finite_floats),
        cold_start_seconds=draw(finite_floats),
    )


@st.composite
def cost_breakdowns(draw):
    return CostBreakdown(
        transfer_dollars=draw(finite_floats),
        request_dollars=draw(finite_floats),
        compute_dollars=draw(finite_floats),
        storage_dollars=draw(finite_floats),
        provisioned_dollars=draw(finite_floats),
    )


@given(latency_breakdowns(), latency_breakdowns())
def test_latency_addition_is_commutative(a, b):
    assert (a + b).total_seconds == pytest.approx((b + a).total_seconds)


@given(latency_breakdowns())
def test_latency_zero_is_identity(a):
    assert (a + LatencyBreakdown.zero()) == a


@given(latency_breakdowns(), latency_breakdowns())
def test_latency_total_is_sum_of_totals(a, b):
    assert (a + b).total_seconds == pytest.approx(a.total_seconds + b.total_seconds)


@given(cost_breakdowns(), cost_breakdowns())
def test_cost_total_is_sum_of_totals(a, b):
    assert (a + b).total_dollars == pytest.approx(a.total_dollars + b.total_dollars)


@given(cost_breakdowns(), st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_cost_scaling_scales_total(a, factor):
    assert a.scaled(factor).total_dollars == pytest.approx(a.total_dollars * factor)


@given(latency_breakdowns())
def test_latency_components_never_exceed_total(a):
    assert a.communication_seconds <= a.total_seconds + 1e-9
    assert a.computation_seconds <= a.total_seconds + 1e-9


# --------------------------------------------------------------------------
# Unit conversions and network-link monotonicity
# --------------------------------------------------------------------------


@given(st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
def test_mb_byte_round_trip(mb):
    assert bytes_to_mb(mb_to_bytes(mb)) == pytest.approx(mb, abs=1e-6)


@given(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.1, max_value=1000.0, allow_nan=False),
    st.integers(min_value=0, max_value=10**12),
    st.integers(min_value=0, max_value=10**12),
)
def test_transfer_time_is_monotone_in_payload(rtt, bandwidth, small, large):
    link = NetworkLink("x", rtt_seconds=rtt, bandwidth_mb_per_s=bandwidth)
    lo, hi = sorted((small, large))
    assert link.transfer_seconds(lo) <= link.transfer_seconds(hi)
    assert link.transfer_seconds(lo) >= rtt


# --------------------------------------------------------------------------
# Deterministic RNG derivation
# --------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=0, max_size=20))
def test_derived_rng_is_reproducible(seed, stream):
    a = derive_rng(seed, stream).random(4)
    b = derive_rng(seed, stream).random(4)
    np.testing.assert_allclose(a, b)


# --------------------------------------------------------------------------
# Aggregation invariants
# --------------------------------------------------------------------------


def _updates_from_matrix(matrix, samples):
    spec = get_model_spec("resnet18")
    return [
        ModelUpdate(
            client_id=i,
            round_id=0,
            model_name="resnet18",
            weights=np.asarray(row, dtype=float),
            size_bytes=spec.size_bytes,
            metrics={"num_samples": float(s)},
        )
        for i, (row, s) in enumerate(zip(matrix, samples))
    ]


update_matrices = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.lists(
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32),
                min_size=4,
                max_size=4,
            ),
            min_size=n,
            max_size=n,
        ),
        st.lists(st.floats(min_value=1.0, max_value=1000.0, allow_nan=False), min_size=n, max_size=n),
    )
)


@given(update_matrices)
@settings(max_examples=50, deadline=None)
def test_fedavg_stays_within_coordinate_bounds(matrix_and_samples):
    matrix, samples = matrix_and_samples
    updates = _updates_from_matrix(matrix, samples)
    aggregate = fedavg(updates)
    stacked = np.array(matrix)
    assert np.all(aggregate.weights <= stacked.max(axis=0) + 1e-6)
    assert np.all(aggregate.weights >= stacked.min(axis=0) - 1e-6)
    assert aggregate.is_aggregate


@given(update_matrices)
@settings(max_examples=50, deadline=None)
def test_robust_aggregators_stay_within_bounds(matrix_and_samples):
    matrix, samples = matrix_and_samples
    updates = _updates_from_matrix(matrix, samples)
    stacked = np.array(matrix)
    for aggregate in (coordinate_median(updates), trimmed_mean(updates, 0.1)):
        assert np.all(aggregate.weights <= stacked.max(axis=0) + 1e-6)
        assert np.all(aggregate.weights >= stacked.min(axis=0) - 1e-6)


# --------------------------------------------------------------------------
# Workload numerics
# --------------------------------------------------------------------------


@given(
    st.lists(
        st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False, width=32), min_size=3, max_size=3),
        min_size=2,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_pairwise_cosine_values_bounded(matrix):
    similarity = pairwise_cosine(np.array(matrix, dtype=float))
    assert np.all(similarity <= 1.0 + 1e-6)
    assert np.all(similarity >= -1.0 - 1e-6)
    assert similarity.shape == (len(matrix), len(matrix))


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_kmeans_labels_are_valid(n_points, k, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(n_points, 3))
    labels, centers = kmeans(matrix, k, seed=seed)
    assert len(labels) == n_points
    assert labels.max() < centers.shape[0] <= min(k, n_points)


# --------------------------------------------------------------------------
# Capacity-bounded policy invariants
# --------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=100)),
        min_size=1,
        max_size=30,
        unique_by=lambda t: t[0],
    ),
    st.integers(min_value=1, max_value=2000),
    st.sampled_from([LRUPolicy, LFUPolicy, FIFOPolicy]),
)
@settings(max_examples=60, deadline=None)
def test_eviction_selection_frees_enough_or_everything(entries, needed, policy_cls):
    policy = policy_cls(capacity_bytes=10**9)
    sizes = {}
    for i, (client, size) in enumerate(entries):
        key = DataKey.update(client, 0)
        policy.record_admission(key, size, now=float(i))
        sizes[key] = size
    victims = policy.select_evictions(needed, sizes)
    freed = sum(sizes[k] for k in victims)
    assert len(set(victims)) == len(victims)
    assert set(victims) <= set(sizes)
    assert freed >= min(needed, sum(sizes.values()))
