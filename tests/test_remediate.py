"""The remediation controller: detection, shadow verification, actuation."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SimulationConfig
from repro.engine import (
    Anomaly,
    RemediationConfig,
    RemediationController,
    RemediationRecord,
    ShardedEngineFLStore,
)
from repro.fl.trainer import FLJobSimulator
from repro.scenario import get_scenario, run


@pytest.fixture(scope="module")
def remedy_config():
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="module")
def remedy_rounds(remedy_config):
    return FLJobSimulator(remedy_config).run_rounds(8)


def _tier(config, rounds, shards=2, **kwargs):
    tier = ShardedEngineFLStore.build(shards, config=config, **kwargs)
    for record in rounds:
        tier.ingest_round(record)
    return tier


# ---------------------------------------------------------------------------
# Config and record types
# ---------------------------------------------------------------------------


class TestRemediationConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"control_interval_seconds": 0},
            {"ewma_alpha": 0},
            {"ewma_alpha": 1.5},
            {"warmup_ticks": -1},
            {"queue_depth_factor": 0.5},
            {"min_queue_depth": 0},
            {"violation_rate_threshold": 0},
            {"requeue_spike_threshold": 0},
            {"cooldown_seconds": -1},
            {"max_actions": -1},
            {"improvement_epsilon": -0.1},
            {"regression_tolerance": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RemediationConfig(**kwargs)

    def test_structural_anomalies_are_the_fault_signatures(self):
        assert Anomaly(0.0, "capacity-loss", 1.0, 2.0).structural
        assert Anomaly(0.0, "requeue-spike", 3.0, 0.0).structural
        assert not Anomaly(0.0, "queue-depth", 9.0, 1.0).structural
        assert not Anomaly(0.0, "slo-violation", 0.8, 0.1).structural

    def test_record_deltas_and_row(self):
        record = RemediationRecord(
            time=35.0,
            anomalies=("capacity-loss",),
            action="add-shard",
            accepted=True,
            reason="r",
            forecast_p99_baseline=10.0,
            forecast_p99_candidate=8.0,
            forecast_goodput_baseline=0.5,
            forecast_goodput_candidate=0.6,
        )
        assert record.forecast_p99_delta == pytest.approx(-2.0)
        assert record.forecast_goodput_delta == pytest.approx(0.1)
        row = record.row()
        assert row["action"] == "add-shard" and row["accepted"] is True
        unverified = RemediationRecord(
            time=0.0, anomalies=(), action="add-shard", accepted=True, reason="r"
        )
        assert unverified.forecast_p99_delta is None


# ---------------------------------------------------------------------------
# The control loop against a real tier (no shadow runner: trusted actuation)
# ---------------------------------------------------------------------------


class TestControlLoop:
    def test_controller_drives_exactly_one_run(self, remedy_config, remedy_rounds):
        tier = _tier(remedy_config, remedy_rounds)
        controller = RemediationController(tier)
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()

    def test_capacity_loss_is_detected_and_repaired(self, remedy_config, remedy_rounds):
        tier = _tier(remedy_config, remedy_rounds, shards=2)
        controller = RemediationController(tier, nominal_shards=2)
        tier.crash_shard()
        assert tier.num_shards == 1
        controller.start()
        tier.loop.run()  # one tick fires; nothing is inflight, so no re-arm
        assert tier.num_shards == 2
        assert controller.ticks == 1
        [record] = controller.records
        assert record.accepted and record.action == "add-shard"
        assert "trusted" in record.reason  # no shadow runner attached
        assert "capacity-loss" in record.anomalies
        summary = controller.summary()
        assert summary.row()["actions_taken"] == 1
        assert summary.final_shards == 2

    def test_max_actions_gates_actuation(self, remedy_config, remedy_rounds):
        tier = _tier(remedy_config, remedy_rounds, shards=2)
        controller = RemediationController(
            tier, config=RemediationConfig(max_actions=0), nominal_shards=2
        )
        tier.crash_shard()
        controller.start()
        tier.loop.run()
        # The anomaly is logged, but the action budget forbids even a verify.
        assert tier.num_shards == 1
        assert controller.records == []
        assert any(a.kind == "capacity-loss" for a in controller.anomaly_log)

    def test_shadow_rejection_blocks_actuation_and_is_logged(
        self, remedy_config, remedy_rounds
    ):
        calls = []

        def pessimistic_shadow(action, state):
            calls.append((action, dict(state)))
            return {
                "p99_baseline": 10.0,
                "p99_candidate": 14.0,  # forecast regression
                "goodput_baseline": 0.5,
                "goodput_candidate": 0.4,
            }

        tier = _tier(remedy_config, remedy_rounds, shards=2)
        controller = RemediationController(
            tier, nominal_shards=2, shadow_runner=pessimistic_shadow
        )
        tier.crash_shard()
        controller.start()
        tier.loop.run()
        assert tier.num_shards == 1  # every proposal was rejected
        assert controller.records and not any(r.accepted for r in controller.records)
        assert all("rejected" in r.reason for r in controller.records)
        # The walk tried the ranked proposals: restore capacity first.
        assert calls[0][0] == "add-shard"
        assert calls[0][1]["shards"] == 1

    def test_shadow_forecasts_are_cached_per_state(self, remedy_config, remedy_rounds):
        calls = []

        def counting_shadow(action, state):
            calls.append(action)
            return {
                "p99_baseline": 10.0,
                "p99_candidate": 12.0,
                "goodput_baseline": 0.5,
                "goodput_candidate": 0.5,
            }

        tier = _tier(remedy_config, remedy_rounds, shards=2)
        controller = RemediationController(
            tier, nominal_shards=2, shadow_runner=counting_shadow
        )
        tier.crash_shard()
        controller._started = True
        controller._seen_completed = 0
        sample = controller._sample()
        anomalies = controller._detect(sample)
        [proposal] = controller._propose(sample, anomalies)[:1]
        first = controller._verify(proposal, sample, anomalies)
        second = controller._verify(proposal, sample, anomalies)
        assert first.accepted is False and second.accepted is False
        assert len(calls) == 1  # same (action, state) hit the cache
        assert controller.shadow_runs == 1


# ---------------------------------------------------------------------------
# End to end through the scenario layer (seed 7, pinned)
# ---------------------------------------------------------------------------


class TestScenarioIntegration:
    def test_pinned_crash_recovery_log(self):
        """The registered fault-recovery scenario at seed 7: the crash is
        detected on the very tick it lands, one shadow-verified re-add is
        accepted, and the forecast deltas that justified it are logged."""
        report = run(get_scenario("fault-recovery"))
        assert report.conserved is True
        summary = report.remediation
        assert summary is not None
        [record] = summary.records
        assert record.time == pytest.approx(30.0)
        assert record.action == "add-shard"
        assert record.accepted is True
        assert "capacity-loss" in record.anomalies
        assert "shadow forecast" in record.reason
        assert record.forecast_p99_delta is not None and record.forecast_p99_delta < 0
        assert summary.row() == {
            "remediation_ticks": summary.ticks,
            "anomalies_detected": summary.anomalies_detected,
            "actions_taken": 1,
            "shadow_accepts": 1,
            "shadow_rejects": 0,
            "shadow_runs": 1,
        }
        assert summary.final_shards == 3  # restored to nominal, never above
        assert report.recovery is not None and report.recovery.recovered is True

    def test_remediated_run_is_deterministic(self):
        spec = get_scenario("fault-recovery")
        first = run(spec)
        second = run(spec)
        assert first.row() == second.row()
        assert first.remediation.records == second.remediation.records

    def test_every_actuation_has_a_logged_shadow_accept(self):
        summary = run(get_scenario("fault-recovery")).remediation
        accepted = [r for r in summary.records if r.accepted]
        assert summary.actions_taken == len(accepted) == summary.accepts
        for record in accepted:
            assert record.forecast_p99_baseline is not None
            assert record.forecast_goodput_baseline is not None

    def test_controller_is_inert_without_faults(self):
        """Byte-identity guarantee: enabling the controller on a healthy run
        changes nothing but the bookkeeping columns."""
        base = get_scenario("fault-recovery")
        plain = run(base.with_overrides({"faults": [], "remediation.enabled": False}))
        guarded = run(base.with_overrides({"faults": [], "remediation.enabled": True}))
        plain_row, guarded_row = plain.row(), guarded.row()
        shared = set(plain_row) & set(guarded_row)
        assert {k: plain_row[k] for k in shared} == {k: guarded_row[k] for k in shared}
        assert guarded_row["actions_taken"] == 0
        assert guarded.remediation.records == []


# ---------------------------------------------------------------------------
# The acceptance sweep: the controller must strictly beat controller-off
# ---------------------------------------------------------------------------


class TestFaultRecoverySweep:
    @pytest.fixture(scope="class")
    def sweep_result(self):
        from repro.analysis.experiments import run_fault_recovery_sweep

        return run_fault_recovery_sweep(kinds=("shard-crash", "reclamation-storm"))

    def test_every_cell_conserves(self, sweep_result):
        assert sweep_result["rows"]
        assert all(row["conserved"] for row in sweep_result["rows"])

    @pytest.mark.parametrize("fault", ["shard-crash", "reclamation-storm"])
    def test_controller_strictly_improves_recovery(self, sweep_result, fault):
        cells = {bool(r["controller"]): r for r in sweep_result["rows"] if r["fault"] == fault}
        on, off = cells[True], cells[False]
        assert on["time_to_recovery_seconds"] < off["time_to_recovery_seconds"]
        assert on["goodput_dip_area"] < off["goodput_dip_area"]
        assert on["shadow_accepts"] >= 1 and on["actions_taken"] >= 1
        assert off["actions_taken"] == 0

    def test_comparison_rows_report_the_deltas(self, sweep_result):
        from repro.analysis.experiments import compare_fault_recovery

        comparisons = {c["fault"]: c for c in compare_fault_recovery(sweep_result["rows"])}
        assert set(comparisons) == {"shard-crash", "reclamation-storm"}
        for row in comparisons.values():
            assert row["ttr_reduction_pct"] > 0
            assert row["dip_reduction_pct"] > 0

    def test_unknown_kind_rejected_before_running(self):
        from repro.analysis.experiments import run_fault_recovery_sweep

        with pytest.raises(ValueError, match="unknown fault kinds"):
            run_fault_recovery_sweep(kinds=("meteor",))


# ---------------------------------------------------------------------------
# Seed-7 pin: counter-delta SLO sampling is invisible to the controller
# ---------------------------------------------------------------------------


class TestCounterDeltaSamplingPin:
    """The control loop once recomputed its per-window violation rate by
    slicing the tier's ever-growing completed-outcome list each tick — an
    O(n^2) term over a run.  It now reads two O(1) counter deltas
    (``finished_total`` / ``slo_violations_total``, armed via
    ``watch_slo_seconds``).  This pin asserts the refactor is decision-for-
    decision invisible: the registry fault-recovery scenario at seed 7 must
    reproduce the exact control trace the slicing implementation produced.
    """

    @pytest.fixture(scope="class")
    def summary(self):
        return run(get_scenario("fault-recovery")).remediation

    def test_control_trace_scalars(self, summary):
        assert summary.ticks == 209
        assert summary.anomalies_detected == 22
        assert summary.actions_taken == 1
        assert (summary.accepts, summary.rejects, summary.shadow_runs) == (1, 0, 1)
        assert summary.final_shards == 3
        assert summary.final_slots_per_function == 1
        assert summary.final_router_kind == "jsq"
        assert summary.final_shed_policy == "drop"

    def test_the_single_actuation_record(self, summary):
        (record,) = summary.records
        assert record.time == 30.0
        assert record.action == "add-shard"
        assert record.accepted
        assert record.forecast_p99_baseline == 152.72411809672255
        assert record.forecast_p99_candidate == 89.41156230926515
        assert record.forecast_goodput_baseline == 0.06336930511121812
        assert record.forecast_goodput_candidate == 0.07361408835588372

    def test_anomaly_stream_head_and_violation_rates(self, summary):
        first = summary.anomalies[0]
        assert (first.time, first.kind, first.value, first.baseline) == (
            30.0,
            "capacity-loss",
            2.0,
            3.0,
        )
        # The per-window violation *rates* are where the delta arithmetic
        # could drift from the sliced lists; pin the only fractional one
        # plus the exact firing instants of every slo-violation anomaly.
        violations = [a for a in summary.anomalies if a.kind == "slo-violation"]
        assert [a.time for a in violations] == [
            165.0, 170.0, 175.0, 285.0, 290.0, 295.0, 485.0, 490.0, 495.0, 500.0,
            680.0, 730.0, 800.0, 855.0, 860.0, 890.0, 900.0, 905.0, 915.0,
            1040.0, 1045.0,
        ]
        assert [a.value for a in violations if a.value != 1.0] == [0.75]
