"""Caching policies: tailored P1-P4, traditional baselines, variants, factory."""

from __future__ import annotations

import pytest

from repro.common.units import MB
from repro.config import CachePolicyConfig
from repro.core.policies.base import PolicyPlan
from repro.core.policies.factory import POLICY_MODES, make_policy_bundle
from repro.core.policies.tailored import (
    AcrossRoundsPolicy,
    AllUpdatesInRoundPolicy,
    MetadataPolicy,
    SingleModelPolicy,
    TailoredPolicyBundle,
)
from repro.core.policies.traditional import FIFOPolicy, LFUPolicy, LRUPolicy, RandomEvictionPolicy
from repro.core.policies.variants import RandomSelectionBundle, StaticPolicyBundle
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, WorkloadRequest


@pytest.fixture(scope="module")
def catalog(rounds):
    catalog = RoundCatalog()
    for record in rounds:
        catalog.register_round(record)
    return catalog


def _request(workload, round_id, client_id=None, history_rounds=2):
    return WorkloadRequest(
        request_id=f"pol-{workload}-{round_id}-{client_id}",
        workload=workload,
        round_id=round_id,
        client_id=client_id,
        history_rounds=history_rounds,
    )


class TestPolicyPlan:
    def test_merge_deduplicates(self):
        a = PolicyPlan(admit_keys=[DataKey.aggregate(1)], evict_keys=[DataKey.aggregate(0)])
        b = PolicyPlan(admit_keys=[DataKey.aggregate(1), DataKey.aggregate(2)])
        merged = a.merge(b)
        assert merged.admit_keys == [DataKey.aggregate(1), DataKey.aggregate(2)]
        assert merged.evict_keys == [DataKey.aggregate(0)]

    def test_is_empty(self):
        assert PolicyPlan().is_empty
        assert not PolicyPlan(prefetch_keys=[DataKey.aggregate(0)]).is_empty


class TestSingleModelPolicy:
    def test_ingest_keeps_latest_aggregate(self, rounds, catalog):
        policy = SingleModelPolicy()
        plan0 = policy.plan_ingest(rounds[0], catalog)
        assert plan0.admit_keys == [rounds[0].aggregate_key()]
        plan2 = policy.plan_ingest(rounds[2], catalog)
        assert DataKey.aggregate(0) in plan2.evict_keys

    def test_request_prefetches_next_aggregate(self, catalog):
        policy = SingleModelPolicy()
        plan = policy.plan_request(_request("inference", 3), [DataKey.aggregate(3)], catalog)
        assert DataKey.aggregate(4) in plan.prefetch_keys


class TestAllUpdatesInRoundPolicy:
    def test_ingest_admits_round_updates(self, rounds, catalog):
        policy = AllUpdatesInRoundPolicy()
        plan = policy.plan_ingest(rounds[0], catalog)
        assert set(plan.admit_keys) == set(rounds[0].update_keys())

    def test_ingest_evicts_stale_rounds(self, rounds, catalog):
        policy = AllUpdatesInRoundPolicy()
        policy.plan_ingest(rounds[0], catalog)
        policy.plan_ingest(rounds[1], catalog)
        plan = policy.plan_ingest(rounds[2], catalog)
        evicted_rounds = {k.round_id for k in plan.evict_keys}
        assert evicted_rounds == {0}

    def test_request_prefetches_next_round_and_evicts_previous(self, rounds, catalog):
        policy = AllUpdatesInRoundPolicy()
        policy.plan_ingest(rounds[3], catalog)
        plan = policy.plan_request(_request("malicious_filtering", 4), [], catalog)
        prefetch_rounds = {k.round_id for k in plan.prefetch_keys}
        assert prefetch_rounds == {5}
        assert {k.round_id for k in plan.evict_keys} == {3}

    def test_no_prefetch_beyond_known_rounds(self, rounds, catalog):
        policy = AllUpdatesInRoundPolicy()
        last = catalog.latest_round
        plan = policy.plan_request(_request("malicious_filtering", last), [], catalog)
        assert plan.prefetch_keys == []


def _most_active_client(catalog):
    counts: dict[int, int] = {}
    for round_id in catalog.rounds():
        for cid in catalog.participants(round_id):
            counts[cid] = counts.get(cid, 0) + 1
    return max(counts, key=counts.get)


class TestAcrossRoundsPolicy:
    def test_prefetches_same_client_next_round(self, catalog):
        policy = AcrossRoundsPolicy()
        client = _most_active_client(catalog)
        rounds_of_client = catalog.rounds_for_client(client)
        if len(rounds_of_client) < 2:
            pytest.skip("client participated in a single round in this sample")
        first, second = rounds_of_client[0], rounds_of_client[1]
        required = [DataKey.update(client, first)]
        plan = policy.plan_request(_request("debugging", first, client_id=client), required, catalog)
        assert DataKey.update(client, second) in plan.prefetch_keys

    def test_evicts_rounds_older_than_history_window(self, catalog):
        policy = AcrossRoundsPolicy()
        client = _most_active_client(catalog)
        rounds_of_client = catalog.rounds_for_client(client)
        if len(rounds_of_client) < 3:
            pytest.skip("client participated in too few rounds in this sample")
        for round_id in rounds_of_client[:2]:
            policy.plan_request(
                _request("debugging", round_id, client_id=client, history_rounds=1),
                [DataKey.update(client, round_id)],
                catalog,
            )
        plan = policy.plan_request(
            _request("debugging", rounds_of_client[2], client_id=client, history_rounds=1),
            [DataKey.update(client, rounds_of_client[2])],
            catalog,
        )
        assert DataKey.update(client, rounds_of_client[0]) in plan.evict_keys

    def test_ingest_admits_tracked_clients_only(self, rounds, catalog):
        policy = AcrossRoundsPolicy()
        assert policy.plan_ingest(rounds[1], catalog).admit_keys == []
        client = rounds[1].participant_ids[0]
        policy.plan_request(
            _request("debugging", 0, client_id=client), [DataKey.update(client, 0)], catalog
        )
        plan = policy.plan_ingest(rounds[1], catalog)
        assert DataKey.update(client, 1) in plan.admit_keys


class TestMetadataPolicy:
    def test_keeps_recent_window_only(self, rounds, catalog):
        policy = MetadataPolicy(recent_rounds=2)
        policy.plan_ingest(rounds[0], catalog)
        policy.plan_ingest(rounds[1], catalog)
        plan = policy.plan_ingest(rounds[2], catalog)
        assert {k.round_id for k in plan.evict_keys} == {0}
        assert all(k.is_metadata for k in plan.evict_keys)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MetadataPolicy(recent_rounds=0)

    def test_request_prefetches_next_round_metadata(self, rounds, catalog):
        policy = MetadataPolicy()
        plan = policy.plan_request(_request("scheduling_perf", 3), [], catalog)
        assert plan.prefetch_keys
        assert all(k.is_metadata and k.round_id == 4 for k in plan.prefetch_keys)


class TestTailoredBundle:
    def test_dispatch_follows_taxonomy(self):
        bundle = TailoredPolicyBundle()
        assert bundle.select_policy_class(_request("inference", 0)) is PolicyClass.P1_INDIVIDUAL
        assert bundle.select_policy_class(_request("clustering", 0)) is PolicyClass.P2_ROUND
        assert bundle.select_policy_class(_request("debugging", 0)) is PolicyClass.P3_ACROSS_ROUNDS
        assert bundle.select_policy_class(_request("incentives", 0)) is PolicyClass.P4_METADATA

    def test_ingest_merges_all_policies(self, rounds, catalog):
        bundle = TailoredPolicyBundle()
        plan = bundle.plan_ingest(rounds[0], catalog)
        kinds = {k.kind for k in plan.admit_keys}
        assert {key.is_update for key in plan.admit_keys} and len(kinds) >= 2

    def test_eviction_ownership_protects_other_classes(self, rounds, catalog):
        bundle = TailoredPolicyBundle()
        bundle.plan_ingest(rounds[0], catalog)
        bundle.plan_ingest(rounds[1], catalog)
        plan = bundle.plan_ingest(rounds[2], catalog)
        # P1 owns aggregates; P2's per-round eviction must not remove them.
        assert DataKey.aggregate(0) in plan.evict_keys  # evicted by its owner (P1)
        p2_victims = [k for k in plan.evict_keys if k.is_update]
        assert all(k.round_id == 0 for k in p2_victims)

    def test_capacity_evictions_oldest_first(self):
        bundle = TailoredPolicyBundle(capacity_bytes=100)
        sizes = {
            DataKey.update(0, 0): 60,
            DataKey.update(0, 1): 60,
            DataKey.update(0, 2): 60,
        }
        victims = bundle.select_evictions(80, sizes)
        assert victims[0] == DataKey.update(0, 0)
        assert sum(sizes[k] for k in victims) >= 80

    def test_unbounded_bundle_never_evicts_for_capacity(self):
        bundle = TailoredPolicyBundle()
        assert bundle.select_evictions(100, {DataKey.update(0, 0): 60}) == []


class TestTraditionalPolicies:
    def _admit(self, policy, keys, size=10 * MB):
        for i, key in enumerate(keys):
            policy.record_admission(key, size, now=float(i))

    def test_no_proactive_plans(self, rounds, catalog):
        policy = LRUPolicy()
        assert policy.plan_ingest(rounds[0], catalog).is_empty
        assert policy.plan_request(_request("clustering", 0), [], catalog).is_empty

    def test_lru_evicts_least_recently_used(self):
        policy = LRUPolicy(capacity_bytes=100 * MB)
        keys = [DataKey.update(i, 0) for i in range(3)]
        self._admit(policy, keys)
        policy.record_access(keys[0], hit=True, now=10.0)
        victims = policy.select_evictions(10 * MB, {k: 10 * MB for k in keys})
        assert victims[0] == keys[1]

    def test_lfu_evicts_least_frequently_used(self):
        policy = LFUPolicy(capacity_bytes=100 * MB)
        keys = [DataKey.update(i, 0) for i in range(3)]
        self._admit(policy, keys)
        for _ in range(5):
            policy.record_access(keys[0], hit=True, now=1.0)
        policy.record_access(keys[2], hit=True, now=2.0)
        victims = policy.select_evictions(10 * MB, {k: 10 * MB for k in keys})
        assert victims[0] == keys[1]

    def test_fifo_evicts_in_admission_order(self):
        policy = FIFOPolicy(capacity_bytes=100 * MB)
        keys = [DataKey.update(i, 0) for i in range(3)]
        self._admit(policy, keys)
        policy.record_access(keys[0], hit=True, now=99.0)
        victims = policy.select_evictions(25 * MB, {k: 10 * MB for k in keys})
        assert victims[:2] == keys[:2]

    def test_random_eviction_returns_enough_victims(self):
        policy = RandomEvictionPolicy(capacity_bytes=100 * MB, seed=1)
        keys = [DataKey.update(i, 0) for i in range(5)]
        self._admit(policy, keys)
        victims = policy.select_evictions(35 * MB, {k: 10 * MB for k in keys})
        assert sum(10 * MB for _ in victims) >= 35 * MB

    def test_record_eviction_forgets_key(self):
        policy = LRUPolicy()
        key = DataKey.update(0, 0)
        policy.record_admission(key, 10, now=0.0)
        policy.record_eviction(key)
        assert policy.tracked_bytes == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FIFOPolicy(capacity_bytes=0)

    def test_admit_on_miss_is_true(self):
        assert LRUPolicy().admit_on_miss


class TestVariants:
    def test_static_bundle_ignores_workload(self):
        bundle = StaticPolicyBundle(fixed_class=PolicyClass.P1_INDIVIDUAL)
        assert bundle.select_policy_class(_request("malicious_filtering", 0)) is PolicyClass.P1_INDIVIDUAL

    def test_random_bundle_covers_multiple_classes(self):
        bundle = RandomSelectionBundle(seed=1)
        chosen = {bundle.select_policy_class(_request("clustering", 0)) for _ in range(40)}
        assert len(chosen) >= 2


class TestFactory:
    @pytest.mark.parametrize("mode", POLICY_MODES)
    def test_every_mode_builds(self, mode):
        policy = make_policy_bundle(mode, config=CachePolicyConfig(), seed=1)
        assert policy is not None

    def test_limited_mode_has_half_capacity(self):
        config = CachePolicyConfig()
        policy = make_policy_bundle("limited", config=config)
        assert policy.capacity_bytes == int(
            config.traditional_policy_capacity_bytes * config.limited_capacity_fraction
        )

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            make_policy_bundle("alphazero")
