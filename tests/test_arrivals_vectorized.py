"""Vectorized arrival generation is byte-identical to the original loops.

The reference functions below are verbatim copies of the pre-vectorization
scalar loops (same draw order, same float accumulation).  Every process must
reproduce them bit-for-bit at seed 7 — both through ``times()`` (list API)
and ``times_array()`` (ndarray API) — across sizes that cross the internal
block boundaries and across non-default parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.arrivals import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_process,
)


def _reference_poisson(process: PoissonArrivals, num_requests: int) -> list[float]:
    gaps = process._rng().exponential(scale=1.0 / process.rate_rps, size=num_requests)
    return np.cumsum(gaps).tolist()


def _reference_bursty(process: BurstyArrivals, num_requests: int) -> list[float]:
    rng = process._rng(process.mean_on_seconds, process.mean_off_seconds)
    arrivals: list[float] = []
    clock = 0.0
    while len(arrivals) < num_requests:
        on_duration = rng.exponential(process.mean_on_seconds)
        t = clock + rng.exponential(1.0 / process.burst_rate_rps)
        while t <= clock + on_duration and len(arrivals) < num_requests:
            arrivals.append(t)
            t += rng.exponential(1.0 / process.burst_rate_rps)
        clock += on_duration + rng.exponential(process.mean_off_seconds)
    return arrivals


def _reference_diurnal(process: DiurnalArrivals, num_requests: int) -> list[float]:
    rng = process._rng(process.amplitude, process.period_seconds)
    peak_rate = process.rate_rps * (1.0 + process.amplitude)
    arrivals: list[float] = []
    t = 0.0
    while len(arrivals) < num_requests:
        t += rng.exponential(1.0 / peak_rate)
        if rng.random() <= process._rate_at(t) / peak_rate:
            arrivals.append(t)
    return arrivals


_REFERENCES = {
    "poisson": _reference_poisson,
    "bursty": _reference_bursty,
    "diurnal": _reference_diurnal,
}


class TestByteIdentityAtSeed7:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    @pytest.mark.parametrize("rate", [2.0, 8.0, 50.0])
    @pytest.mark.parametrize("num_requests", [0, 1, 7, 500, 5000])
    def test_times_matches_the_pre_vectorization_loop(self, kind, rate, num_requests):
        process = make_arrival_process(kind, rate, seed=7)
        expected = _REFERENCES[kind](process, num_requests)
        assert process.times(num_requests) == expected

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_times_array_equals_times_exactly(self, kind):
        process = make_arrival_process(kind, 8.0, seed=7)
        arr = process.times_array(2500)
        assert arr.dtype == np.float64
        assert arr.tolist() == process.times(2500)

    def test_bursty_with_non_default_windows(self):
        process = BurstyArrivals(8.0, seed=7, mean_on_seconds=2.0, mean_off_seconds=0.0)
        assert process.times(3000) == _reference_bursty(process, 3000)

    def test_bursty_with_long_quiet_gaps(self):
        # Sparse windows: most windows hold zero or one arrival, exercising
        # the empty-chunk and terminal-draw bookkeeping.
        process = BurstyArrivals(0.5, seed=7, mean_on_seconds=0.2, mean_off_seconds=30.0)
        assert process.times(400) == _reference_bursty(process, 400)

    def test_bursty_across_internal_block_boundaries(self):
        # A high-rate burst pulls tens of thousands of gap draws from one
        # window, forcing the pre-drawn exponential block to refill
        # mid-window (the extend path).
        process = BurstyArrivals(20000.0, seed=7, mean_on_seconds=10.0, mean_off_seconds=5.0)
        assert process.times(150_000) == _reference_bursty(process, 150_000)

    def test_diurnal_with_non_default_cycle(self):
        process = DiurnalArrivals(8.0, seed=7, amplitude=0.3, period_seconds=40.0)
        assert process.times(3000) == _reference_diurnal(process, 3000)

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_other_seeds_match_too(self, kind):
        # The equivalence is structural, not a seed-7 coincidence.
        process = make_arrival_process(kind, 8.0, seed=123)
        assert process.times(1200) == _REFERENCES[kind](process, 1200)


class TestArrayApiContract:
    def test_empty_request_count_yields_empty_array(self):
        for kind in ARRIVAL_KINDS:
            arr = make_arrival_process(kind, 8.0).times_array(0)
            assert arr.size == 0 and arr.dtype == np.float64

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_times_are_non_decreasing_and_positive(self, kind):
        arr = make_arrival_process(kind, 8.0).times_array(4000)
        assert arr.size == 4000
        assert float(arr[0]) > 0.0
        assert bool(np.all(np.diff(arr) >= 0.0))
