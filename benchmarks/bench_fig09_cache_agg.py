"""Figure 9 — FLStore vs Cache-Agg per-request latency and cost (6 workloads)."""

import numpy as np

from repro.analysis.experiments import run_figure9_vs_cache_agg


def test_figure9_vs_cache_agg(report):
    rows = report(
        lambda: run_figure9_vs_cache_agg(num_rounds=15, requests_per_workload=8),
        title="Figure 9: per-request latency and cost, FLStore vs Cache-Agg",
    )
    assert len(rows) == 6
    # Paper: 64.66% average latency reduction and 98.83% average cost reduction.
    update_heavy = [r for r in rows if r["workload"] in ("Cosine similarity", "Sched. (Cluster)", "Malicious Filtering", "Inference")]
    assert float(np.mean([r["latency_reduction_pct"] for r in update_heavy])) > 40.0
    assert float(np.mean([r["cost_reduction_pct"] for r in rows])) > 95.0
