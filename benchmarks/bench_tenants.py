"""Multi-tenant serving benchmark — weighted fairness on a shared slot.

Sweeps ``tier.queue_discipline`` over the ``noisy-neighbor`` scenario (a
steady Poisson tenant sharing one warm slot with a bursty neighbour at
twice its arrival rate) and merges the rows into ``BENCH_serve.json``
under the ``tenants`` section.  The sweep's wall time is published as the
top-level ``tenants_wall_seconds`` scalar so the CI perf gate
(``benchmarks/check_perf_gate.py --key tenants_wall_seconds``)
regression-gates the per-flow scheduling and per-tenant SLO-accounting
overhead alongside the other serving benchmarks.
"""

import time

from repro.analysis.perf import merge_bench_json, merge_bench_scalar
from repro.scenario import get_scenario, sweep


def test_tenant_sweep(report):
    timing = {}

    def run():
        spec = get_scenario("noisy-neighbor")
        start = time.perf_counter()
        rows = sweep(spec, axes={"tier.queue_discipline": ("fifo", "wfq", "drr")})
        timing["wall_seconds"] = time.perf_counter() - start
        return {"rows": rows, "scenario": spec.name}

    result = report(
        run,
        "Multi-tenant isolation (fifo vs wfq vs drr)",
        columns=[
            "served",
            "shed",
            "p99_sojourn_seconds",
            "steady_p99",
            "steady_violations",
            "bursty_p99",
            "bursty_violations",
            "conserved",
        ],
    )
    rows = result["rows"]
    merge_bench_json(
        "tenants",
        {
            "scenario": result["scenario"],
            "rows": rows,
            "wall_seconds": timing["wall_seconds"],
        },
    )
    merge_bench_scalar("tenants_wall_seconds", timing["wall_seconds"])

    fifo, wfq, drr = rows
    for row in rows:
        assert row["conserved"] is True
        assert row["served"] + row["shed"] + row["degraded"] == 48 + 64
    # The isolation story the scenario pins at seed 7: weighted fairness
    # holds the steady tenant inside its SLO while FIFO hands the queue to
    # the burst and violates it.
    assert fifo["steady_violations"] > 0.1
    for fair in (wfq, drr):
        assert fair["steady_violations"] == 0.0
        assert fair["steady_p99"] < 0.6 * fifo["steady_p99"]
