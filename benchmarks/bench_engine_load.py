"""Open-loop engine load benchmark — the queueing counterpart of the hot path.

Runs the arrival-process x utilization sweep through the discrete-event
engine at a reduced scale and merges the resulting rows into
``BENCH_serve.json`` under the ``engine_load`` section, so the perf record
tracks both the closed-loop serve throughput and the open-loop queueing
profile across PRs.
"""

from repro.analysis.experiments import run_load_sweep
from repro.analysis.perf import merge_bench_json


def test_engine_load(report):
    result = report(
        lambda: run_load_sweep(num_rounds=10, num_requests=80),
        "Open-loop load sweep (engine)",
        columns=[
            "process",
            "utilization",
            "offered_rps",
            "goodput_rps",
            "p50_sojourn_seconds",
            "p95_sojourn_seconds",
            "p99_sojourn_seconds",
            "mean_queue_depth",
            "max_queue_depth",
        ],
    )
    rows = result["rows"]
    merge_bench_json(
        "engine_load",
        {"rows": rows, "mean_service_seconds": result["mean_service_seconds"]},
    )
    assert len(rows) == 9  # 3 arrival processes x 3 utilization levels
    assert all(row["completed"] == 80 for row in rows)
    by_point = {(row["process"], row["utilization"]): row for row in rows}
    for process in ("poisson", "bursty", "diurnal"):
        light, heavy = by_point[(process, 0.5)], by_point[(process, 2.0)]
        # Queueing must bite as offered load crosses the service rate.
        assert heavy["p95_sojourn_seconds"] >= light["p95_sojourn_seconds"]
