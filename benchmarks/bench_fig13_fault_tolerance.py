"""Figure 13 — latency/cost per request under Zipfian faults vs replica count."""

import numpy as np

from repro.analysis.experiments_appendix import run_figure13_fault_tolerance


def test_figure13_fault_tolerance(report):
    rows = report(
        lambda: run_figure13_fault_tolerance(num_rounds=15, requests_per_workload=10),
        title="Figure 13: per-request latency/cost under reclamation faults vs function instances",
    )

    def mean_latency(instances: int) -> float:
        return float(
            np.mean([r["mean_latency_seconds"] for r in rows if r["function_instances"] == instances])
        )

    # Paper: a single instance suffers the most; 3-5 instances are nearly flat.
    assert mean_latency(1) > mean_latency(3)
    assert abs(mean_latency(4) - mean_latency(5)) < 0.5 * mean_latency(3)
