"""Figure 12 — scalability with increasing concurrent requests (5 cached functions)."""

from repro.analysis.experiments_appendix import run_figure12_scalability


def test_figure12_scalability(report):
    rows = report(
        lambda: run_figure12_scalability(num_rounds=12),
        title="Figure 12: per-request latency/cost vs concurrent requests (5 cached functions)",
    )
    for workload in {r["workload"] for r in rows}:
        series = {r["parallel_requests"]: r["mean_latency_seconds"] for r in rows if r["workload"] == workload}
        # Flat up to the number of cached parallel functions, rising beyond it.
        assert series[1] == series[5]
        assert series[10] > series[5]
