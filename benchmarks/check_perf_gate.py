"""Benchmark regression gate for the serve hot path.

Compares the freshly measured ``BENCH_serve.json`` against the committed
baseline and fails (exit code 1) when the hot-path wall time regressed by
more than the allowed fraction.  Used as the last CI step::

    python benchmarks/check_perf_gate.py BASELINE.json BENCH_serve.json --max-regression 0.25

Set ``PERF_GATE_SKIP=1`` to turn the gate into a report-only step (useful
when the runner hardware differs wildly from the baseline machine).
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _skip_requested() -> bool:
    """Whether PERF_GATE_SKIP is set to a truthy value (\"0\"/\"false\" keep the gate on)."""
    return os.environ.get("PERF_GATE_SKIP", "").strip().lower() in ("1", "true", "yes", "on")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_serve.json to compare against")
    parser.add_argument("current", help="freshly measured BENCH_serve.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown (0.25 = fail past +25%%)",
    )
    parser.add_argument(
        "--key",
        default="wall_seconds",
        help="top-level metric to compare (default: serve hot-path wall time)",
    )
    args = parser.parse_args(argv)

    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, "r", encoding="utf-8") as handle:
        current = json.load(handle)

    base_value = baseline.get(args.key)
    current_value = current.get(args.key)
    if (
        not isinstance(base_value, (int, float))
        or not isinstance(current_value, (int, float))
        or base_value <= 0
    ):
        # A broken or renamed metric must not silently disable the gate.
        print(
            f"perf gate: cannot compare {args.key!r} "
            f"(baseline={base_value!r}, current={current_value!r})"
        )
        if _skip_requested():
            print("perf gate: PERF_GATE_SKIP set, reporting only")
            return 0
        return 1

    ratio = current_value / base_value
    verdict = "ok" if ratio <= 1.0 + args.max_regression else "REGRESSION"
    print(
        f"perf gate [{args.key}]: baseline={base_value:.6f} current={current_value:.6f} "
        f"ratio={ratio:.3f} (limit {1.0 + args.max_regression:.2f}) -> {verdict}"
    )
    if verdict == "REGRESSION":
        if _skip_requested():
            print("perf gate: PERF_GATE_SKIP set, reporting only")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
