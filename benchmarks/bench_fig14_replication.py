"""Figure 14 — replication vs re-fetching under function reclamations."""

from repro.analysis.experiments_appendix import run_figure14_replication_vs_refetch


def test_figure14_replication_vs_refetch(report):
    result = report(
        lambda: run_figure14_replication_vs_refetch(num_rounds=15, requests_per_workload=10),
        title="Figure 14: replication vs re-fetching (latency, cost, and keep-alive comparison)",
    )
    # Paper: keeping replicas is far cheaper than re-computing/re-fetching lost data.
    assert result["replication_total_cost_dollars"] <= result["refetch_total_cost_dollars"]
    assert result["replication_keepalive_cost_dollars"] < 0.01
    rows = result["rows"]
    slower = sum(1 for r in rows if r["refetch_latency_seconds"] >= r["replication_latency_seconds"])
    assert slower >= len(rows) // 2
