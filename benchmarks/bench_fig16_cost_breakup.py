"""Figure 16 — accumulated cost breakup vs ObjStore-Agg."""

import numpy as np

from repro.analysis.experiments import run_figure16_total_cost_breakup


def test_figure16_total_cost_breakup(report):
    rows = report(
        lambda: run_figure16_total_cost_breakup(num_rounds=15, requests_per_workload=8),
        title="Figure 16: accumulated cost breakup, FLStore vs ObjStore-Agg",
    )
    assert len(rows) == 4 * 10
    # Paper: 77.8%-94.7% average total-cost reduction depending on the model.
    assert float(np.mean([r["cost_reduction_pct"] for r in rows])) > 70.0
