"""Figure 11 — FLStore's tailored policies vs LRU/FIFO/Random/limited variants."""

import numpy as np

from repro.analysis.experiments import run_figure11_policy_comparison


def test_figure11_policy_comparison(report):
    rows = report(
        lambda: run_figure11_policy_comparison(num_rounds=15, requests_per_workload=8),
        title="Figure 11: per-request latency/cost of FLStore caching-policy variants",
    )
    by_variant: dict[str, list[float]] = {}
    for row in rows:
        by_variant.setdefault(row["variant"], []).append(row["mean_latency_seconds"])
    means = {variant: float(np.mean(values)) for variant, values in by_variant.items()}
    # Tailored policies (and the capacity-limited variant) beat the
    # traditional reactive policies; FLStore-Random sits in between.
    assert means["FLStore"] < means["FLStore-LRU"]
    assert means["FLStore"] < means["FLStore-FIFO"]
    assert means["FLStore-limited"] < means["FLStore-FIFO"]
