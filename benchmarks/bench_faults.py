"""Fault-recovery benchmark — injection and remediation overhead of the tier.

Runs the fault-recovery grid (canonical shard-crash and reclamation-storm
clauses, remediation controller on and off) through the serving tier
(:mod:`repro.engine.faults` + :mod:`repro.engine.remediate`) and merges the
resulting rows into ``BENCH_serve.json`` under the ``fault_recovery``
section.  The grid's wall time is also published as the top-level
``fault_wall_seconds`` scalar so the CI perf gate
(``benchmarks/check_perf_gate.py --key fault_wall_seconds``) regression-gates
the fault-event scheduling, anomaly detection, and shadow-simulation
machinery alongside the serve hot path and the other sweeps.
"""

import time

from repro.analysis.experiments import (
    FAULT_RECOVERY_COLUMNS,
    compare_fault_recovery,
    run_fault_recovery_sweep,
)
from repro.analysis.perf import merge_bench_json, merge_bench_scalar


def test_fault_recovery_sweep(report):
    timing = {}

    def run():
        start = time.perf_counter()
        result = run_fault_recovery_sweep(kinds=("shard-crash", "reclamation-storm"))
        timing["wall_seconds"] = time.perf_counter() - start
        return result

    result = report(
        run,
        "Fault-recovery sweep (fault kind x remediation controller)",
        columns=list(FAULT_RECOVERY_COLUMNS),
    )
    rows = result["rows"]
    comparisons = compare_fault_recovery(rows)
    merge_bench_json(
        "fault_recovery",
        {
            "rows": rows,
            "comparisons": comparisons,
            "mean_service_seconds": result["mean_service_seconds"],
            "utilization": result["utilization"],
            "shards": result["shards"],
            "control_interval_seconds": result["control_interval_seconds"],
            "shadow_requests": result["shadow_requests"],
            "wall_seconds": timing["wall_seconds"],
        },
    )
    merge_bench_scalar("fault_wall_seconds", timing["wall_seconds"])

    assert len(rows) == 4  # two fault kinds x controller on/off
    for row in rows:
        # Faults conserve requests: crashed or reclaimed, every offered
        # request is accounted for.
        assert row["conserved"] is True
    # The acceptance comparison: for both structural faults, closed-loop
    # remediation strictly improves time-to-recovery AND goodput dip area
    # at equal nominal warm capacity, and every actuation was shadow-verified.
    for comparison in comparisons:
        assert comparison["ttr_reduction_pct"] > 0
        assert comparison["dip_reduction_pct"] > 0
        assert comparison["shadow_accepts"] >= comparison["actions_taken"] >= 1
