"""Serve hot-path microbenchmark — writes the ``BENCH_serve.json`` perf record.

Unlike the figure benchmarks (which regenerate the paper's tables), this one
profiles the serving engine itself: requests/sec and p50/p99 request wall
time over a mixed workload trace, plus the setup-cache hit counters.  The
JSON output is the perf trajectory record compared across PRs (see
EXPERIMENTS.md).
"""

from repro.analysis.perf import measure_serve_hotpath, write_bench_json


def test_serve_hotpath(benchmark):
    report = benchmark.pedantic(
        lambda: measure_serve_hotpath(num_rounds=15, requests_per_workload=25),
        rounds=1,
        iterations=1,
    )
    path = write_bench_json(report)
    print()
    print(f"wrote {path}")
    print(
        f"serve hot path: {report.requests} requests in {report.wall_seconds:.3f}s "
        f"({report.requests_per_second:.0f} req/s, p50 {report.p50_request_seconds * 1e6:.0f}us, "
        f"p99 {report.p99_request_seconds * 1e6:.0f}us)"
    )
    assert report.requests == 150
    assert report.requests_per_second > 0
    # The serve hot path must stay comfortably in the sub-millisecond-per-
    # request regime on any modern machine; this is a regression tripwire,
    # not a tight bound.
    assert report.p50_request_seconds < 0.05
