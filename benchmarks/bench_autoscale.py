"""Autoscale benchmark — control-loop and resize overhead of the elastic tier.

Runs the autoscaling-policy comparison (none / reactive / predictive) on the
diurnal arrival process through the resizable front door
(:class:`repro.engine.sharded.ShardedEngineFLStore` +
:class:`repro.engine.autoscale.Autoscaler`) and merges the resulting rows
into ``BENCH_serve.json`` under the ``autoscale`` section.  The sweep's wall
time is also published as the top-level ``autoscale_wall_seconds`` scalar so
the CI perf gate (``benchmarks/check_perf_gate.py --key
autoscale_wall_seconds``) regression-gates the control-tick sampling, scale
actuation, and shard-warmup machinery alongside the serve hot path and the
shard sweep.
"""

import time

from repro.analysis.experiments import (
    AUTOSCALE_REPORT_COLUMNS,
    compare_autoscale_policies,
    run_autoscale_sweep,
)
from repro.analysis.perf import merge_bench_json, merge_bench_scalar


def test_autoscale_sweep(report):
    timing = {}

    def run():
        start = time.perf_counter()
        result = run_autoscale_sweep(
            policies=("none", "reactive", "predictive"),
            utilizations=(2.5,),
            num_rounds=12,
            num_requests=160,
            max_queue_depth=6,
            shed_policy="drop",
        )
        timing["wall_seconds"] = time.perf_counter() - start
        return result

    result = report(
        run,
        "Autoscale sweep (resizable serving tier)",
        columns=list(AUTOSCALE_REPORT_COLUMNS),
    )
    rows = result["rows"]
    merge_bench_json(
        "autoscale",
        {
            "rows": rows,
            "comparisons": compare_autoscale_policies(rows),
            "mean_service_seconds": result["mean_service_seconds"],
            "max_queue_depth": result["max_queue_depth"],
            "shed_policy": result["shed_policy"],
            "control_interval_seconds": result["control_interval_seconds"],
            "wall_seconds": timing["wall_seconds"],
        },
    )
    merge_bench_scalar("autoscale_wall_seconds", timing["wall_seconds"])

    assert len(rows) == 3  # one row per policy
    by_policy = {row["autoscaler"]: row for row in rows}
    for row in rows:
        # Resizes conserve requests: every offered request is accounted for.
        assert row["conserved"] is True
        assert row["served"] + row["shed"] + row["degraded"] == 160
    # Fixed capacity drowns under the diurnal peak; both scalers shed less.
    assert by_policy["none"]["shed"] > by_policy["reactive"]["shed"]
    # The acceptance comparison: forecast-ahead scaling beats threshold
    # scaling on shed rate at no more warm-capacity cost.
    assert by_policy["predictive"]["shed_rate"] <= by_policy["reactive"]["shed_rate"]
    assert (
        by_policy["predictive"]["capacity_unit_seconds"]
        <= by_policy["reactive"]["capacity_unit_seconds"]
    )
