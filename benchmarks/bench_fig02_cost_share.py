"""Figure 2 — non-training share of per-round FL cost for each application."""

from repro.analysis.experiments import run_figure2_cost_share


def test_figure2_cost_share(report):
    rows = report(
        lambda: run_figure2_cost_share(num_rounds=15, requests_per_workload=6),
        title="Figure 2: non-training share of per-round FL cost (EfficientNetV2-S)",
    )
    assert len(rows) == 10
    assert all(r["non_training_cost"] > 0 for r in rows)
    assert max(r["non_training_share_pct"] for r in rows) > 35.0
