"""Shard-sweep benchmark — routing and admission overhead of the sharded tier.

Runs the shard count x utilization sweep through the routed front door
(:class:`repro.engine.sharded.ShardedEngineFLStore`) at a reduced scale and
merges the resulting rows into ``BENCH_serve.json`` under the
``shard_sweep`` section.  The sweep's wall time is also published as the
top-level ``shard_sweep_wall_seconds`` scalar so the CI perf gate
(``benchmarks/check_perf_gate.py --key shard_sweep_wall_seconds``)
regression-gates the routing + admission-control overhead alongside the
closed-loop serve hot path.
"""

import time

from repro.analysis.experiments import run_shard_sweep
from repro.analysis.perf import merge_bench_json, merge_bench_scalar


def test_shard_sweep(report):
    timing = {}

    def run():
        start = time.perf_counter()
        result = run_shard_sweep(
            shard_counts=(1, 2, 4),
            utilizations=(1.0, 2.0),
            num_rounds=8,
            num_requests=48,
            max_queue_depth=4,
            shed_policy="drop",
        )
        timing["wall_seconds"] = time.perf_counter() - start
        return result

    result = report(
        run,
        "Shard sweep (routed serving tier)",
        columns=[
            "shards",
            "utilization",
            "offered_rps",
            "goodput_rps",
            "p50_sojourn_seconds",
            "p99_sojourn_seconds",
            "shed_rate",
            "violation_rate",
            "served",
            "shed",
            "degraded",
            "conserved",
        ],
    )
    rows = result["rows"]
    merge_bench_json(
        "shard_sweep",
        {
            "rows": rows,
            "mean_service_seconds": result["mean_service_seconds"],
            "max_queue_depth": result["max_queue_depth"],
            "shed_policy": result["shed_policy"],
            "wall_seconds": timing["wall_seconds"],
        },
    )
    merge_bench_scalar("shard_sweep_wall_seconds", timing["wall_seconds"])

    assert len(rows) == 6  # 3 shard counts x 2 utilization levels
    for row in rows:
        # Shed requests are conserved: every offered request is accounted for.
        assert row["conserved"] is True
        assert row["served"] + row["shed"] + row["degraded"] == 48
        assert row["p99_sojourn_seconds"] >= row["p50_sojourn_seconds"]
    by_point = {(row["shards"], row["utilization"]): row for row in rows}
    # Overload (rho=2 against one shard's capacity) must shed behind a
    # 4-deep queue on a single shard.
    assert by_point[(1, 2.0)]["shed"] > 0
