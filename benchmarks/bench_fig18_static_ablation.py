"""Figure 18 — FLStore vs FLStore-Static when the workload mix changes."""

from repro.analysis.experiments import run_figure18_static_ablation


def test_figure18_static_ablation(report):
    result = report(
        lambda: run_figure18_static_ablation(num_rounds=15, warmup_requests=6, measured_requests=10),
        title="Figure 18: dynamic policy selection vs FLStore-Static (inference -> filtering switch)",
    )
    # Paper: FLStore cuts per-request latency by ~99% and cost by ~3x vs the
    # static-policy variant after the workload switch.
    assert result["latency_reduction_pct"] > 50.0
    assert result["cost_ratio"] > 1.5
