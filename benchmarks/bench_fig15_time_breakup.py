"""Figure 15 — accumulated communication/computation time breakup vs ObjStore-Agg."""

from repro.analysis.experiments import run_figure15_total_time_breakup


def test_figure15_total_time_breakup(report):
    rows = report(
        lambda: run_figure15_total_time_breakup(num_rounds=15, requests_per_workload=8),
        title="Figure 15: accumulated time breakup (communication vs computation)",
    )
    assert len(rows) == 4 * 10
    update_heavy = [r for r in rows if r["workload"] not in ("Incentives", "Sched. (Perf.)")]
    # Paper: the baseline spends ~99% of its time in communication and FLStore
    # removes most of that time.
    assert all(r["objstore_comm_fraction"] > 0.7 for r in update_heavy)
    assert all(r["total_time_reduction_pct"] > 20.0 for r in update_heavy)
