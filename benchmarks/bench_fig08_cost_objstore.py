"""Figure 8 — FLStore vs ObjStore-Agg per-request cost (4 models x 10 workloads)."""

import numpy as np

from repro.analysis.experiments import run_figure8_cost_vs_objstore


def test_figure8_cost_vs_objstore(report):
    rows = report(
        lambda: run_figure8_cost_vs_objstore(num_rounds=15, requests_per_workload=8),
        title="Figure 8: per-request cost, FLStore vs ObjStore-Agg",
    )
    assert len(rows) == 4 * 10
    mean_reduction = float(np.mean([r["cost_reduction_pct"] for r in rows]))
    # Paper: 88.23% average per-request cost reduction, up to 99.78%.
    assert mean_reduction > 80.0
    assert max(r["cost_reduction_pct"] for r in rows) > 95.0
