"""Table 2 — cache-policy hit rates: FLStore P2/P3/P4 vs FIFO/LFU/LRU."""

from repro.analysis.experiments import run_table2_hit_rates


def test_table2_hit_rates(report):
    rows = report(
        lambda: run_table2_hit_rates(num_rounds=30),
        title="Table 2: cache policy performance across workload groups",
    )
    flstore_rows = [r for r in rows if r["policy"].startswith("FLStore")]
    traditional_rows = [r for r in rows if not r["policy"].startswith("FLStore")]
    # Paper: 0.98-1.00 hit rate for FLStore's tailored policies, 0 for the others.
    assert all(r["hit_rate"] >= 0.85 for r in flstore_rows)
    assert all(r["hit_rate"] <= 0.05 for r in traditional_rows)
