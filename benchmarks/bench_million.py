"""Engine-core benchmark — one million requests in single-digit seconds.

Runs the registered ``million-request`` scenario (one plain tier, 10^6
Poisson arrivals, ``metrics="streaming"``) end to end — setup, calibration,
vectorized arrival generation, the closed-form queueing fast path, and the
streaming report — and merges the measurement into ``BENCH_serve.json``
under the ``engine_core`` section.  The wall time is also published as the
top-level ``engine_core_wall_seconds`` scalar so the CI perf gate
(``benchmarks/check_perf_gate.py --key engine_core_wall_seconds``)
regression-gates the raw request throughput of the event core alongside the
serve hot path; the hard acceptance bound (<= 9 s wall) is asserted here
directly.
"""

import resource
import sys
import time

from repro.analysis.perf import merge_bench_json, merge_bench_scalar
from repro.scenario import get_scenario, run


def _peak_rss_mb() -> float:
    """The process's peak resident set size in MB (``getrusage``, no psutil)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return peak / (1024 * 1024) if sys.platform == "darwin" else peak / 1024


def test_million_request_engine_core(report):
    spec = get_scenario("million-request")
    num_requests = spec.workload.num_requests
    timing = {}

    def run_million():
        start = time.perf_counter()
        result = run(spec)
        timing["wall_seconds"] = time.perf_counter() - start
        return {"rows": [result.row()]}

    result = report(
        run_million,
        f"Engine core: {num_requests:,} requests, streaming metrics, fast path",
    )
    row = result["rows"][0]
    wall = timing["wall_seconds"]
    merge_bench_json(
        "engine_core",
        {
            "scenario": spec.name,
            "num_requests": num_requests,
            "metrics": spec.metrics,
            "wall_seconds": wall,
            "requests_per_second": num_requests / wall,
            "peak_rss_mb": _peak_rss_mb(),
            "row": row,
        },
    )
    merge_bench_scalar("engine_core_wall_seconds", wall)

    assert row["conserved"] is True
    assert row["completed"] == num_requests
    assert row["served"] == num_requests
    # The acceptance bound this PR ships: a million-request sweep must
    # finish in single-digit seconds, end to end.
    assert wall <= 9.0
