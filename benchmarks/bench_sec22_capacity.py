"""Sections 2.2 & 4.4 — FL metadata volume and tailored-policy footprint."""

from repro.analysis.experiments_appendix import run_section22_capacity_analysis


def test_section22_capacity_analysis(report):
    result = report(
        run_section22_capacity_analysis,
        title="Section 2.2/4.4: cache-everything vs tailored-policy capacity and cost",
    )
    # Paper: ~79 TB across ~10098 functions if everything is cached vs ~1.2 GB
    # on two functions with tailored policies.
    assert 60 <= result["full_caching"]["total_tb"] <= 100
    assert result["full_caching"]["functions_needed"] > 5000
    assert result["tailored_policies"]["total_gb"] < 5
    assert result["tailored_policies"]["functions_needed"] <= 2
    assert result["footprint_reduction_pct"] > 99.0
