"""Extension ablation — prefetch-ahead depth of the tailored P2 policy (DESIGN.md §5)."""

from repro.analysis.experiments_appendix import run_ablation_prefetch_depth


def test_ablation_prefetch_depth(report):
    rows = report(
        lambda: run_ablation_prefetch_depth(num_rounds=15, num_requests=12),
        title="Ablation: prefetch-ahead depth vs hit rate, latency, and cost",
    )
    by_depth = {r["prefetch_rounds_ahead"]: r for r in rows}
    # Prefetching one round ahead is what turns the iterative access pattern
    # into cache hits; deeper prefetching should not hurt.
    assert by_depth[0]["hit_rate"] < 0.2
    assert by_depth[1]["hit_rate"] > 0.8
    assert by_depth[1]["mean_latency_seconds"] < by_depth[0]["mean_latency_seconds"]
    assert by_depth[2]["hit_rate"] >= by_depth[1]["hit_rate"] - 0.05
