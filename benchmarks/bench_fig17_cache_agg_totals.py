"""Figure 17 — accumulated time and cost vs Cache-Agg."""

import numpy as np

from repro.analysis.experiments import run_figure17_vs_cache_agg_totals


def test_figure17_vs_cache_agg_totals(report):
    rows = report(
        lambda: run_figure17_vs_cache_agg_totals(num_rounds=15, requests_per_workload=8),
        title="Figure 17: accumulated time and cost, FLStore vs Cache-Agg",
    )
    assert len(rows) == 6
    # Paper: 37.8%-84.5% total-time reduction and 98.1%-99.9% total-cost reduction.
    assert float(np.mean([r["cost_reduction_pct"] for r in rows])) > 95.0
    heavy = [r for r in rows if r["workload"] not in ("Incentives", "Sched. (Perf.)")]
    assert all(r["time_reduction_pct"] > 0.0 for r in heavy)
