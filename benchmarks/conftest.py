"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation at a
reduced (but shape-preserving) scale, times the end-to-end experiment with
``pytest-benchmark``, and prints the regenerated rows so the run output can be
compared side by side with the paper (see EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import pytest

from repro.analysis.perf import tune_gc
from repro.analysis.tables import format_table

# The benchmark process accumulates large immutable setup-cache masters;
# default GC thresholds rescan them constantly (see repro.analysis.perf).
tune_gc()


def run_and_report(
    benchmark,
    experiment: Callable[[], Any],
    title: str,
    columns: Sequence[str] | None = None,
) -> Any:
    """Run ``experiment`` once under the benchmark timer and print its rows."""
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = result["rows"] if isinstance(result, Mapping) and "rows" in result else result
    print()
    if isinstance(rows, Sequence) and rows and isinstance(rows[0], Mapping):
        print(format_table(list(rows), columns=columns, title=title))
    else:
        print(title)
        print(rows)
    if isinstance(result, Mapping):
        extras = {k: v for k, v in result.items() if k != "rows" and not isinstance(v, (list, dict))}
        if extras:
            print("summary:", extras)
    return result


@pytest.fixture()
def report(benchmark):
    """Fixture wrapping :func:`run_and_report` with the current benchmark."""

    def _report(experiment, title, columns=None):
        return run_and_report(benchmark, experiment, title, columns)

    return _report
