"""Hot-key replication benchmark — the replicated tier's ceiling lift.

Sweeps ``tier.replication.factor`` over the ``hotkey-replicated`` scenario
(the jsq-hotkey mix with the P1 hot key replicated onto two shards) and
merges the rows into ``BENCH_serve.json`` under the ``replication``
section.  The sweep's wall time is published as the top-level
``replication_wall_seconds`` scalar so the CI perf gate
(``benchmarks/check_perf_gate.py --key replication_wall_seconds``)
regression-gates the replica-routing overhead alongside the other serving
benchmarks.
"""

import time

from repro.analysis.perf import merge_bench_json, merge_bench_scalar
from repro.scenario import get_scenario, sweep


def test_replication_sweep(report):
    timing = {}

    def run():
        spec = get_scenario("hotkey-replicated")
        start = time.perf_counter()
        rows = sweep(spec, axes={"tier.replication.factor": (1, 2)})
        timing["wall_seconds"] = time.perf_counter() - start
        return {"rows": rows, "scenario": spec.name}

    result = report(
        run,
        "Hot-key replication (factor 1 vs 2)",
        columns=[
            "shards",
            "max_shard_routed",
            "p99_sojourn_seconds",
            "served",
            "degraded",
            "shed",
            "replica_hits",
            "conserved",
        ],
    )
    rows = result["rows"]
    merge_bench_json(
        "replication",
        {
            "scenario": result["scenario"],
            "rows": rows,
            "wall_seconds": timing["wall_seconds"],
        },
    )
    merge_bench_scalar("replication_wall_seconds", timing["wall_seconds"])

    base, replicated = rows
    for row in rows:
        assert row["conserved"] is True
        assert row["served"] + row["shed"] + row["degraded"] == 64
    # The replicated cell strictly lifts the hot-shard ceiling: the hot
    # shard's routing share drops, the tail improves, and fewer requests
    # overflow to the degraded object-store path.
    assert replicated["max_shard_routed"] < base["max_shard_routed"]
    assert replicated["p99_sojourn_seconds"] < base["p99_sojourn_seconds"]
    assert replicated["degraded"] < base["degraded"]
    assert replicated["replica_hits"] > 0
