"""Scenario-API benchmark — spec build/validate/run overhead of the new layer.

Runs a small router-comparison sweep (``consistent-hash`` vs ``jsq`` on a
hot-keyed mix) entirely through the declarative scenario API — spec
validation, dotted-axis expansion, ``build_tier``, ``run`` with conservation
asserted — and merges the rows into ``BENCH_serve.json`` under the
``scenario`` section plus a top-level ``scenario_wall_seconds`` scalar, so
the spec layer's overhead is tracked alongside the sweeps it now powers.
"""

import time

from repro.analysis.perf import merge_bench_json, merge_bench_scalar
from repro.scenario import ArrivalSpec, ScenarioSpec, TierSpec, WorkloadMixSpec, sweep


def test_scenario_sweep(report):
    timing = {}

    base = ScenarioSpec(
        name="bench-router-compare",
        num_rounds=6,
        workload=WorkloadMixSpec(workloads=("inference", "scheduling_perf"), num_requests=32),
        arrival=ArrivalSpec(kind="bursty", utilization=2.0),
        tier=TierSpec(shards=4, router_kind="consistent-hash"),
    )

    def run():
        start = time.perf_counter()
        rows = sweep(
            base,
            axes={
                "tier.router_kind": ("consistent-hash", "jsq"),
                "arrival.utilization": (1.0, 2.0),
            },
        )
        timing["wall_seconds"] = time.perf_counter() - start
        return {"rows": rows}

    result = report(
        run,
        "Scenario sweep (router comparison through the spec API)",
        columns=[
            "scenario",
            "router",
            "utilization",
            "p50_sojourn_seconds",
            "p99_sojourn_seconds",
            "max_shard_routed",
            "served",
            "shed",
            "conserved",
        ],
    )
    rows = result["rows"]
    merge_bench_json(
        "scenario",
        {"rows": rows, "wall_seconds": timing["wall_seconds"]},
    )
    merge_bench_scalar("scenario_wall_seconds", timing["wall_seconds"])

    assert len(rows) == 4  # 2 routers x 2 utilization levels
    by_point = {(row["router"], row["utilization"]): row for row in rows}
    for row in rows:
        assert row["conserved"] is True
    # The load-aware placement spreads the hot key that hashing concentrates.
    assert (
        by_point[("jsq", 2.0)]["max_shard_routed"]
        < by_point[("consistent-hash", 2.0)]["max_shard_routed"]
    )
