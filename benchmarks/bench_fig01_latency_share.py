"""Figure 1 — non-training share of per-round FL latency for each application."""

from repro.analysis.experiments import run_figure1_latency_share


def test_figure1_latency_share(report):
    rows = report(
        lambda: run_figure1_latency_share(num_rounds=15, requests_per_workload=6),
        title="Figure 1: non-training share of per-round FL latency (EfficientNetV2-S)",
    )
    assert len(rows) == 10
    # Paper: a single non-training application can reach up to 60% of round latency.
    assert max(r["non_training_share_pct"] for r in rows) > 30.0
