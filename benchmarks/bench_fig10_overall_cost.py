"""Figure 10 — overall per-round FL cost with and without FLStore."""

from repro.analysis.experiments import run_figure10_overall_cost


def test_figure10_overall_cost(report):
    rows = report(
        lambda: run_figure10_overall_cost(num_rounds=15, requests_per_workload=6),
        title="Figure 10: overall per-round FL cost with and without FLStore",
    )
    assert len(rows) == 10
    assert all(r["cost_with_flstore"] <= r["cost_without_flstore"] for r in rows)
    # Paper: per-workload reductions between 42% and 96% of the total round cost.
    assert max(r["reduction_pct"] for r in rows) > 30.0
