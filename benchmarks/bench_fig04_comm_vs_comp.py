"""Figure 4 — communication vs computation latency of non-training workloads."""

from repro.analysis.experiments import run_figure4_comm_vs_comp


def test_figure4_comm_vs_comp(report):
    result = report(
        lambda: run_figure4_comm_vs_comp(num_rounds=15, requests_per_workload=6),
        title="Figure 4: communication vs computation latency on the conventional stack",
    )
    # Paper: ~89 s average communication vs ~2.8 s computation (31x ratio).
    assert result["average_communication_seconds"] > result["average_computation_seconds"]
    assert result["communication_to_computation_ratio"] > 5.0
