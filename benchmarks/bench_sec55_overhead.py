"""Section 5.5 — memory/time overhead of the Cache Engine and Request Tracker."""

from repro.analysis.experiments_appendix import run_section55_component_overhead


def test_section55_component_overhead(report):
    rows = report(
        lambda: run_section55_component_overhead(request_counts=(1000, 100000)),
        title="Section 5.5: component overhead of the Request Tracker and Cache Engine",
    )
    small = next(r for r in rows if r["concurrent_requests"] == 1000)
    large = next(r for r in rows if r["concurrent_requests"] == 100000)
    # Paper: <1 MB at 1000 requests, tens of MB at 100k, lookups under 1 ms.
    assert small["request_tracker_mb"] < 2.0 and small["cache_engine_mb"] < 2.0
    assert large["request_tracker_mb"] < 100.0 and large["cache_engine_mb"] < 100.0
    assert all(r["lookup_under_one_ms"] for r in rows)
