"""Figure 7 — FLStore vs ObjStore-Agg per-request latency (4 models x 10 workloads)."""

import numpy as np

from repro.analysis.experiments import run_figure7_latency_vs_objstore


def test_figure7_latency_vs_objstore(report):
    rows = report(
        lambda: run_figure7_latency_vs_objstore(num_rounds=15, requests_per_workload=8),
        title="Figure 7: per-request latency, FLStore vs ObjStore-Agg",
    )
    assert len(rows) == 4 * 10
    mean_reduction = float(np.mean([r["latency_reduction_pct"] for r in rows]))
    # Paper: 50.75% average per-request latency reduction, up to 99.94%.
    assert mean_reduction > 50.0
    assert max(r["latency_reduction_pct"] for r in rows) > 90.0
