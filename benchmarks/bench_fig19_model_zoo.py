"""Figure 19 — memory footprint of the 23-model cross-device FL zoo."""

from repro.analysis.experiments_appendix import run_figure19_model_footprints


def test_figure19_model_footprints(report):
    result = report(
        run_figure19_model_footprints,
        title="Figure 19: serialized memory footprint of commonly used FL models",
        columns=["model", "family", "size_mb", "params_millions"],
    )
    assert result["num_models"] == 23
    # Paper: ~161 MB average footprint; every model fits in a 10 GB function.
    assert 120 <= result["average_size_mb"] <= 200
    assert all(r["fits_in_10gb_function"] for r in result["rows"])
