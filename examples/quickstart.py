"""Quickstart: simulate an FL job, ingest its metadata into FLStore, serve requests.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import FLJobSimulator, SimulationConfig, build_default_flstore
from repro.analysis.tables import format_table


def main() -> None:
    # 1. Configure a small cross-device FL job (ResNet18, 20 clients, 5 per round).
    config = SimulationConfig.small(seed=7)
    print(f"Model: {config.job.model_name}, clients: {config.job.total_clients}, "
          f"{config.job.clients_per_round} selected per round")

    # 2. Simulate training and stream the per-round metadata into FLStore.
    simulator = FLJobSimulator(config)
    flstore = build_default_flstore(config)
    for record in simulator.rounds(10):
        flstore.ingest_round(record)
    print(f"Ingested {len(flstore.catalog)} rounds; "
          f"{flstore.cached_bytes / 1e6:.0f} MB hot in {flstore.warm_function_count} functions; "
          "everything backed up to the persistent store.")

    # 3. Serve non-training requests straight from the serverless cache.
    latest = flstore.catalog.latest_round
    rows = []
    for workload in ("malicious_filtering", "clustering", "incentives", "inference"):
        result = flstore.serve(flstore.make_request(workload, round_id=latest))
        rows.append(
            {
                "workload": workload,
                "latency_s": result.latency.total_seconds,
                "cost_$": result.cost.total_dollars,
                "cache_hit_rate": result.hit_rate,
            }
        )
    print()
    print(format_table(rows, title="Non-training requests served by FLStore (latest round)"))

    # 4. Peek at one workload's actual output.
    filtering = flstore.serve(flstore.make_request("malicious_filtering", round_id=latest - 1))
    print()
    print(f"Malicious-client filtering on round {latest - 1}: "
          f"examined {filtering.result['num_examined']} clients, "
          f"flagged {filtering.result['flagged_clients']}")
    overhead = flstore.component_overhead()
    print(f"Cache Engine overhead: {overhead['cache_engine_bytes'] / 1024:.1f} KB, "
          f"Request Tracker overhead: {overhead['request_tracker_bytes'] / 1024:.1f} KB")


if __name__ == "__main__":
    main()
