"""Quickstart: describe a serving scenario as one typed spec, then run and sweep it.

The scenario API (``repro.scenario``) is the front door to the simulator:
a frozen, validated :class:`ScenarioSpec` names the workload mix, the
open-loop arrival process, and the tier topology; ``run(spec)`` builds the
right stack (analytic FLStore -> discrete-event engine -> routed shards ->
autoscaler) and serves the mix with conservation asserted; ``sweep`` grids
any spec field.  Run with::

    python examples/quickstart.py

or equivalently from the CLI::

    python -m repro.cli run-scenario --list
    python -m repro.cli run-scenario --name sharded-burst --smoke
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    ScenarioSpec,
    ScenarioValidationError,
    TierSpec,
    WorkloadMixSpec,
    run,
    sweep,
)


def main() -> None:
    # 1. Describe the scenario: a bursty open-loop mix at 2x one shard's
    #    capacity, served by two hashed shards with a bounded queue.
    spec = ScenarioSpec(
        name="quickstart",
        num_rounds=5,
        workload=WorkloadMixSpec(num_requests=24),
        arrival=ArrivalSpec(kind="bursty", utilization=2.0),
        tier=TierSpec(
            shards=2,
            router_kind="consistent-hash",
            admission=AdmissionSpec(max_queue_depth=4, shed_policy="drop"),
        ),
    )
    print(f"Scenario {spec.name!r}: {spec.workload.num_requests} requests "
          f"({', '.join(spec.workload.workloads)}) at rho={spec.arrival.utilization} "
          f"on {spec.tier.shards}x {spec.tier.router_kind} shards")

    # 2. Run it end to end: ingest rounds, serve open-loop, assert that
    #    served + degraded + shed == offered.
    report = run(spec)
    print()
    print(format_table([report.row()], title="One scenario run (conservation asserted)"))
    print(f"calibrated E[S] = {report.mean_service_seconds:.3f}s, "
          f"SLO = {report.slo_seconds:.3f}s, offered rate = {report.offered_rate_rps:.3f} rps")

    # 3. Sweep any field by dotted path — here the router axis:
    #    max_shard_routed quantifies the hot-key imbalance that load-aware
    #    JSQ routing (join-shortest-queue over the affinity candidates)
    #    removes relative to pure hashing.
    rows = sweep(spec, axes={"tier.router_kind": ("consistent-hash", "jsq")})
    print()
    print(format_table(
        rows,
        columns=["router", "p50_sojourn_seconds", "p99_sojourn_seconds",
                 "max_shard_routed", "served", "shed", "conserved"],
        title="Router sweep (same spec, one axis)",
    ))

    # 4. Every knob is validated at spec build time — a typo can never
    #    fail three layers deep inside a serving tier.
    try:
        spec.with_overrides({"tier.admission.shed_policy": "yeet"})
    except ScenarioValidationError as exc:
        print(f"\nValidation works: {exc}")

    # 5. Specs are data: JSON/TOML round-trip for checking into a repo.
    assert ScenarioSpec.from_toml(spec.to_toml()) == spec
    print("Spec round-trips through TOML; see examples/scenarios/ for bundled specs.")


if __name__ == "__main__":
    main()
