"""Post-training debugging and audit scenario (the paper's P3 workloads).

After training finishes, an auditor (a) traces one client's behaviour across
rounds (provenance / FedDebug-style rewind) and (b) re-runs malicious-client
filtering on historical rounds — all served by FLStore from warm serverless
functions long after the aggregator could have been shut down.

Run with::

    python examples/debugging_audit.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.config import SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.fl.trainer import FLJobSimulator
from repro.traces.generator import RequestTraceGenerator


def main() -> None:
    # A job with a noticeable share of adversarial clients so there is
    # something to find.
    config = SimulationConfig.small(seed=13).with_job(
        total_clients=30, clients_per_round=8, malicious_fraction=0.15
    )
    simulator = FLJobSimulator(config)
    flstore = build_default_flstore(config)
    for record in simulator.rounds(15):
        flstore.ingest_round(record)
    print(f"Training finished: {len(flstore.catalog)} rounds of metadata stored.")
    print(f"True malicious clients (ground truth): {sorted(simulator.population.malicious_ids)}")

    # --- (a) trace one client across rounds (policy P3) --------------------
    generator = RequestTraceGenerator(flstore.catalog, seed=1)
    client = generator.most_active_client()
    trace = generator.workload_trace("debugging", 6, client_id=client)
    rows = []
    for request in trace:
        result = flstore.serve(request)
        rows.append(
            {
                "round": request.round_id,
                "latency_s": result.latency.total_seconds,
                "hits": result.cache_hits,
                "misses": result.cache_misses,
                "prefetched": result.prefetched_keys,
                "anomalous_rounds": str(result.result["anomalous_rounds"]),
            }
        )
    print()
    print(format_table(rows, title=f"Debugging trace of client {client} across rounds (policy P3)"))
    print("Note how the first request misses and every later request hits: the P3 policy"
          " prefetches the client's next-round update while the current one is processed.")

    # --- (b) re-run malicious filtering on historical rounds (policy P2) ----
    flagged: dict[int, list[int]] = {}
    for round_id in range(5, 10):
        result = flstore.serve(flstore.make_request("malicious_filtering", round_id=round_id))
        flagged[round_id] = result.result["flagged_clients"]
    print()
    print("Historical malicious-filtering audit (flagged clients per round):")
    for round_id, clients in flagged.items():
        print(f"  round {round_id}: {clients or 'none flagged'}")

    detected = {cid for clients in flagged.values() for cid in clients}
    truth = simulator.population.malicious_ids
    if detected:
        precision = len(detected & truth) / len(detected)
        print(f"Detection precision over the audited rounds: {precision:.2f}")
    print()
    print("Standby cost of keeping this audit capability available for 50 hours: "
          f"${flstore.standby_cost(50.0).total_dollars:.4f} "
          "(vs an always-on aggregator instance at $46.10)")


if __name__ == "__main__":
    main()
