"""Compare FLStore against the paper's two baselines on the same request trace.

Reproduces (at laptop scale) the headline comparison of Sections 5.2-5.3:
FLStore vs a SageMaker+S3-style aggregator (ObjStore-Agg) and a
SageMaker+ElastiCache-style aggregator (Cache-Agg) on a mixed stream of
non-training workloads.

Run with::

    python examples/compare_baselines.py
"""

from __future__ import annotations

from repro.analysis.comparison import percent_reduction
from repro.analysis.runner import prepare_setup, run_trace
from repro.analysis.tables import format_table
from repro.config import SimulationConfig
from repro.simulation.metrics import MetricsCollector
from repro.workloads.registry import EVALUATION_WORKLOADS


def main() -> None:
    # The paper's evaluation setup (EfficientNetV2-S, 10 of 250 clients per
    # round) with a reduced weight-vector dimension so it runs in seconds.
    config = SimulationConfig.paper(model_name="efficientnet_v2_small").with_job(reduced_dim=64)
    setup = prepare_setup(config, num_rounds=20)

    trace = setup.generator.mixed_trace(list(EVALUATION_WORKLOADS), 120)
    collector = MetricsCollector()
    for name, system in setup.systems.items():
        print(f"Serving {len(trace)} requests on {name} ...")
        run_trace(system, trace, system_name=name, collector=collector)

    rows = []
    summaries = collector.by_system()
    for name, summary in sorted(summaries.items()):
        rows.append(
            {
                "system": name,
                "mean_latency_s": summary.mean_latency_seconds,
                "p95_latency_s": summary.p95_latency_seconds,
                "mean_cost_$": summary.mean_cost_dollars,
                "comm_share_%": 100.0 * summary.communication_fraction,
                "hit_rate": summary.hit_rate,
            }
        )
    print()
    print(format_table(rows, title="Per-request latency and cost over the mixed trace"))

    flstore = summaries["flstore"]
    objstore = summaries["objstore-agg"]
    cache = summaries["cache-agg"]
    print()
    print("FLStore vs ObjStore-Agg: "
          f"latency -{percent_reduction(objstore.mean_latency_seconds, flstore.mean_latency_seconds):.1f}%, "
          f"cost -{percent_reduction(objstore.mean_cost_dollars, flstore.mean_cost_dollars):.1f}%  "
          "(paper: -50.8% latency, -88.2% cost on average)")
    print("FLStore vs Cache-Agg:    "
          f"latency -{percent_reduction(cache.mean_latency_seconds, flstore.mean_latency_seconds):.1f}%, "
          f"cost -{percent_reduction(cache.mean_cost_dollars, flstore.mean_cost_dollars):.1f}%  "
          "(paper: -64.6% latency, -98.8% cost on average)")


if __name__ == "__main__":
    main()
