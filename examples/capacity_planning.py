"""Capacity planning: why tailored caching policies matter (Sections 2.2 and 4.4).

Estimates the metadata volume of FL jobs at different scales, the cost of
caching everything (serverless or ElastiCache), and the footprint of
FLStore's tailored policies — then verifies the hit-rate contrast against
traditional policies on a live trace.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis.capacity import (
    dedicated_cache_cost_per_hour,
    estimate_full_caching,
    estimate_tailored_caching,
)
from repro.analysis.experiments import run_table2_hit_rates
from repro.analysis.tables import format_table


def main() -> None:
    # --- analytic capacity model -------------------------------------------
    rows = []
    for clients, rounds in ((10, 1000), (100, 1000), (1000, 1000)):
        full = estimate_full_caching(clients_per_round=clients, total_rounds=rounds)
        rows.append(
            {
                "clients/round": clients,
                "rounds": rounds,
                "total_volume_TB": full.total_tb,
                "functions_needed": full.functions_needed,
                "elasticache_$_per_hour": dedicated_cache_cost_per_hour(full.total_bytes),
            }
        )
    print(format_table(rows, title="Cost of caching *all* FL metadata (EfficientNetV2-S jobs)"))

    tailored = estimate_tailored_caching(clients_per_round=10)
    print()
    print(f"FLStore tailored-policy footprint for the same job: {tailored.total_gb:.2f} GB "
          f"on {tailored.functions_needed} function(s), "
          f"${tailored.keepalive_cost_per_month:.4f}/month of keep-alive pings.")

    # --- live hit-rate contrast (Table 2) -----------------------------------
    print()
    print("Replaying per-policy-class traces (this reproduces Table 2 at reduced scale)...")
    table2 = run_table2_hit_rates(num_rounds=25)
    print(format_table(
        table2,
        columns=["group", "workload", "policy", "hits", "misses", "total", "hit_rate"],
        title="Cache-policy hit rates: FLStore P2/P3/P4 vs FIFO/LFU/LRU",
    ))


if __name__ == "__main__":
    main()
